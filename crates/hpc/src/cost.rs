//! Calibrated simulated-runtime model for DNNP training jobs.
//!
//! The paper's runtime facts that this model reproduces:
//! * one 40k-step training of the 160-atom system finishes in under 2 h on
//!   a 6-GPU Summit node (final-generation solutions: 68–80 minutes);
//! * the same training takes about 65× longer on a CPU-only node (~7 days);
//! * the cost grows with the descriptor cutoff, because the neighbor count
//!   (and thus descriptor work) grows ∝ rcut³ until the minimum-image
//!   limit saturates it.

use rand::Rng;

/// Work parameters of one training job.
#[derive(Clone, Copy, Debug)]
pub struct TrainingJob {
    /// Optimisation steps.
    pub steps: usize,
    /// Frames per step across all data-parallel workers.
    pub batch_total: usize,
    /// Atoms per frame.
    pub n_atoms: usize,
    /// Descriptor cutoff (Å).
    pub rcut: f64,
    /// Cubic box side (Å), used to saturate the neighbor count.
    pub box_len: f64,
}

impl TrainingJob {
    /// Expected neighbors within `rcut` for this job's density, clamped to
    /// `n_atoms − 1` (every other atom) as the minimum image allows.
    pub fn neighbors(&self) -> f64 {
        let density = self.n_atoms as f64 / self.box_len.powi(3);
        let shell = 4.0 / 3.0 * std::f64::consts::PI * self.rcut.powi(3) * density;
        shell.min(self.n_atoms as f64 - 1.0)
    }
}

/// Runtime model with GPU/CPU modes and multiplicative log-normal-ish noise.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Minutes per abstract work unit on a 6-GPU node.
    pub minutes_per_unit: f64,
    /// CPU-node slowdown factor (paper §2.1.2: ≈65×).
    pub cpu_slowdown: f64,
    /// Relative runtime jitter (σ of the multiplicative noise).
    pub noise_frac: f64,
    /// Per-job fixed overhead in minutes (startup, data staging).
    pub overhead_minutes: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so paper-scale jobs (40k steps × 6-frame batches,
        // 160 atoms) stay under the 80 minutes the paper observed even at
        // rcut = 12, with the final-generation solutions (rcut ≈ 10–11.3)
        // landing near the reported 68–74 minutes.
        CostModel {
            minutes_per_unit: 0.95e-8,
            cpu_slowdown: 65.0,
            noise_frac: 0.04,
            overhead_minutes: 2.0,
        }
    }
}

impl CostModel {
    /// Abstract work units for a job: steps × batch × atoms × per-atom cost,
    /// where the per-atom cost splits into neighbor-proportional descriptor
    /// work and fixed fitting-net work.
    pub fn work_units(&self, job: &TrainingJob) -> f64 {
        let per_atom = job.neighbors() + 50.0;
        job.steps as f64 * job.batch_total as f64 * job.n_atoms as f64 * per_atom
    }

    /// Deterministic GPU-node minutes (no noise).
    pub fn gpu_minutes_mean(&self, job: &TrainingJob) -> f64 {
        self.overhead_minutes + self.minutes_per_unit * self.work_units(job)
    }

    /// Sampled GPU-node minutes.
    pub fn gpu_minutes<R: Rng + ?Sized>(&self, job: &TrainingJob, rng: &mut R) -> f64 {
        let jitter = 1.0 + self.noise_frac * gaussian(rng);
        (self.gpu_minutes_mean(job) * jitter.max(0.5)).max(0.1)
    }

    /// Deterministic CPU-node minutes.
    pub fn cpu_minutes_mean(&self, job: &TrainingJob) -> f64 {
        self.overhead_minutes + self.cpu_slowdown * self.minutes_per_unit * self.work_units(job)
    }

    /// The paper's headline speedup: CPU minutes / GPU minutes.
    pub fn speedup(&self, job: &TrainingJob) -> f64 {
        self.cpu_minutes_mean(job) / self.gpu_minutes_mean(job)
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// The paper-scale training job (40k steps, 160 atoms, 17.84 Å box).
pub fn paper_job(rcut: f64) -> TrainingJob {
    TrainingJob { steps: 40_000, batch_total: 6, n_atoms: 160, rcut, box_len: 17.84 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_job_lands_under_eighty_minutes() {
        // §3.2: "Runtimes for all training runs in the combined last
        // generation solution set are under 80 minutes, and no runs for any
        // generations crossed beyond this value."
        let model = CostModel::default();
        for rcut in [6.0, 9.0, 12.0] {
            let m = model.gpu_minutes_mean(&paper_job(rcut));
            assert!(m < 80.0, "rcut {rcut}: {m} min exceeds the observed 80");
            assert!(m > 20.0, "rcut {rcut}: {m} min implausibly fast");
        }
        // The selected chemically accurate solutions (rcut 10.1–11.32) ran
        // 68–74 minutes; our model should land in that neighbourhood.
        let m = model.gpu_minutes_mean(&paper_job(11.32));
        assert!((60.0..80.0).contains(&m), "rcut 11.32: {m} min");
    }

    #[test]
    fn runtime_grows_with_rcut() {
        let model = CostModel::default();
        let m6 = model.gpu_minutes_mean(&paper_job(6.0));
        let m9 = model.gpu_minutes_mean(&paper_job(9.0));
        let m12 = model.gpu_minutes_mean(&paper_job(12.0));
        assert!(m6 < m9 && m9 < m12, "{m6} {m9} {m12}");
    }

    #[test]
    fn neighbor_count_saturates_at_system_size() {
        let big = TrainingJob { rcut: 50.0, ..paper_job(50.0) };
        assert_eq!(big.neighbors(), 159.0);
        let small = paper_job(6.0);
        assert!(small.neighbors() < 30.0);
    }

    #[test]
    fn cpu_speedup_near_sixty_five() {
        let model = CostModel::default();
        let s = model.speedup(&paper_job(9.0));
        // Overhead slightly dilutes the slowdown factor.
        assert!((55.0..=65.0).contains(&s), "speedup {s}");
        // And the CPU run takes days, as the paper reports (~7 days).
        let days = model.cpu_minutes_mean(&paper_job(9.0)) / 60.0 / 24.0;
        assert!((1.5..10.0).contains(&days), "CPU training {days} days");
    }

    #[test]
    fn sampled_minutes_jitter_around_mean() {
        let model = CostModel::default();
        let job = paper_job(9.0);
        let mean = model.gpu_minutes_mean(&job);
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200).map(|_| model.gpu_minutes(&job, &mut rng)).collect();
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((avg - mean).abs() / mean < 0.02, "avg {avg} vs mean {mean}");
        assert!(samples.iter().any(|&s| s != mean), "no jitter at all");
        assert!(samples.iter().all(|&s| s > 0.0));
    }
}
