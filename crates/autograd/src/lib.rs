//! # dphpo-autograd
//!
//! A compact dense-tensor automatic-differentiation engine with
//! **double-backward** support, built for the DNNP (deep neural network
//! potential) training substrate of this workspace.
//!
//! Why double backward matters here: a neural network potential predicts a
//! total energy `E(x; w)` from atomic positions `x`, and the forces are its
//! negative position gradient `F = -∂E/∂x`. Training minimises a weighted
//! sum of the energy error *and the force error*, so the weight gradient of
//! the loss contains the mixed second derivative `∂/∂w (∂E/∂x)`. The
//! [`Tape`] here expresses every backward computation as new taped
//! operations, making gradients themselves differentiable — the same
//! capability DeePMD-kit obtains from TensorFlow.
//!
//! ## Example
//!
//! ```
//! use dphpo_autograd::{Tape, Tensor};
//!
//! let t = Tape::new();
//! let x = t.constant(Tensor::vector(&[1.0, 2.0]));
//! let y = t.sum_all(t.square(x)); // y = Σ x²
//! let g = t.grad(y, &[x])[0];     // dy/dx = 2x — and g is differentiable too
//! assert_eq!(t.value(g).data(), &[2.0, 4.0]);
//! ```

pub(crate) mod simd;
pub mod tape;
pub mod tensor;

pub use tape::{Tape, TapeAllocStats, Unary, Var};
pub use tensor::{Shape, Tensor};
