//! Dense `f64` tensors restricted to one and two dimensions.
//!
//! This is deliberately a small tensor type: the DNNP substrate only needs
//! vectors (per-pair scalars, per-atom scalars) and matrices (activations,
//! weights). Keeping the rank bounded keeps every operation allocation-lean
//! and easy to audit, per the workspace's HPC coding guides.
//!
//! The backing storage is a shared `Arc<Vec<f64>>`: cloning a tensor is a
//! reference-count bump, `reshape` aliases the same buffer, and mutation
//! goes through copy-on-write (`data_mut`), so the autograd tape can hand
//! out values without copying and recycle uniquely-owned buffers between
//! training steps.

use std::fmt;
use std::sync::Arc;

/// Shape of a [`Tensor`]: rank 1 (`[n]`) or rank 2 (`[rows, cols]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Shape {
    /// A vector of length `n`.
    D1(usize),
    /// A row-major matrix with `rows × cols` elements.
    D2(usize, usize),
}

impl Shape {
    /// Total number of scalar elements.
    #[inline]
    pub fn len(&self) -> usize {
        match *self {
            Shape::D1(n) => n,
            Shape::D2(r, c) => r * c,
        }
    }

    /// True when the shape holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows for a matrix, length for a vector.
    #[inline]
    pub fn rows(&self) -> usize {
        match *self {
            Shape::D1(n) => n,
            Shape::D2(r, _) => r,
        }
    }

    /// Columns for a matrix, `1` for a vector.
    #[inline]
    pub fn cols(&self) -> usize {
        match *self {
            Shape::D1(_) => 1,
            Shape::D2(_, c) => c,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Shape::D1(n) => write!(f, "[{n}]"),
            Shape::D2(r, c) => write!(f, "[{r}, {c}]"),
        }
    }
}

/// A dense, row-major, `f64` tensor of rank 1 or 2 with shared storage.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f64>>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{}, {}, …, {}]", self.data[0], self.data[1], self.data[self.data.len() - 1])
        }
    }
}

impl Tensor {
    /// Build a tensor from a shape and backing data; panics on length mismatch.
    pub fn new(shape: Shape, data: Vec<f64>) -> Self {
        assert_eq!(
            shape.len(),
            data.len(),
            "shape {shape} does not match data length {}",
            data.len()
        );
        Tensor { shape, data: Arc::new(data) }
    }

    /// A vector tensor from a slice.
    pub fn vector(data: &[f64]) -> Self {
        Tensor::new(Shape::D1(data.len()), data.to_vec())
    }

    /// A matrix tensor from row-major data.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        Tensor::new(Shape::D2(rows, cols), data)
    }

    /// A scalar, represented as a length-1 vector.
    pub fn scalar(v: f64) -> Self {
        Tensor::new(Shape::D1(1), vec![v])
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        Tensor { shape, data: Arc::new(vec![0.0; shape.len()]) }
    }

    /// All-one tensor of the given shape.
    pub fn ones(shape: Shape) -> Self {
        Tensor { shape, data: Arc::new(vec![1.0; shape.len()]) }
    }

    /// Fill with a constant.
    pub fn full(shape: Shape, v: f64) -> Self {
        Tensor { shape, data: Arc::new(vec![v; shape.len()]) }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Flat element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data (row-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing data (row-major). Copy-on-write: if the
    /// buffer is shared with another tensor, it is cloned first.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consume into the backing vector (cloning only if the buffer is
    /// shared with another tensor).
    pub fn into_data(self) -> Vec<f64> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Consume into the backing vector only when this tensor is the sole
    /// owner — used by the tape's buffer pool to recycle allocations.
    pub fn try_unique_data(self) -> Option<Vec<f64>> {
        Arc::try_unwrap(self.data).ok()
    }

    /// Build a tensor around an already-shared buffer without reallocating.
    /// Panics on length mismatch.
    pub(crate) fn from_shared(shape: Shape, data: Arc<Vec<f64>>) -> Self {
        assert_eq!(
            shape.len(),
            data.len(),
            "shape {shape} does not match data length {}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Consume into the shared buffer only when this tensor is the sole
    /// owner — the tape's pool recycles the `Arc` allocation itself, so a
    /// recycled buffer costs no heap traffic when reused.
    pub(crate) fn try_unique_shared(mut self) -> Option<Arc<Vec<f64>>> {
        if Arc::get_mut(&mut self.data).is_some() {
            Some(self.data)
        } else {
            None
        }
    }

    /// The single value of a scalar tensor; panics if `len() != 1`.
    pub fn item(&self) -> f64 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar tensor {}", self.shape);
        self.data[0]
    }

    /// Matrix element access (row-major).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        let cols = self.shape.cols();
        self.data[r * cols + c]
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Reinterpret the data with a new shape of identical element count.
    /// Shares the backing buffer — no copy.
    pub fn reshape(&self, shape: Shape) -> Tensor {
        assert_eq!(self.shape.len(), shape.len(), "reshape {} -> {shape}", self.shape);
        Tensor { shape, data: Arc::clone(&self.data) }
    }

    /// Elementwise binary map; shapes must match exactly.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch {} vs {}", self.shape, other.shape);
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor { shape: self.shape, data: Arc::new(data) }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor { shape: self.shape, data: Arc::new(self.data.iter().map(|&a| f(a)).collect()) }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiply every element by `c`.
    pub fn scale(&self, c: f64) -> Tensor {
        self.map(|a| a * c)
    }

    /// Add `c` to every element.
    pub fn add_scalar(&self, c: f64) -> Tensor {
        self.map(|a| a + c)
    }

    /// In-place `self += other`, used for adjoint accumulation.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += c * other` (axpy).
    pub fn axpy(&mut self, c: f64, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data_mut().iter_mut().zip(other.data.iter()) {
            *a += c * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Euclidean norm of the flattened data.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `[n,k] + [k]` row-broadcast addition (bias add).
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        let (r, c) = match self.shape {
            Shape::D2(r, c) => (r, c),
            Shape::D1(n) => (1, n),
        };
        assert_eq!(bias.shape.len(), c, "bias length {} vs cols {c}", bias.shape.len());
        let _ = r;
        let mut data = vec![0.0; self.data.len()];
        crate::simd::add_bias(&self.data, c, &bias.data, &mut data);
        Tensor { shape: self.shape, data: Arc::new(data) }
    }

    fn matmul_dims(&self, other: &Tensor) -> (usize, usize, usize) {
        let (m, k) = match self.shape {
            Shape::D2(m, k) => (m, k),
            Shape::D1(k) => (1, k),
        };
        let (k2, n) = match other.shape {
            Shape::D2(k2, n) => (k2, n),
            Shape::D1(k2) => (k2, 1),
        };
        assert_eq!(k, k2, "matmul inner-dim mismatch {} x {}", self.shape, other.shape);
        (m, k, n)
    }

    /// Matrix product `self @ other` for 2-D operands.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, _, n) = self.matmul_dims(other);
        let mut out = vec![0.0; m * n];
        self.matmul_into(other, &mut out);
        Tensor { shape: Shape::D2(m, n), data: Arc::new(out) }
    }

    /// Matrix product accumulated into a caller-provided zeroed buffer of
    /// length `m·n`.
    ///
    /// Delegates to the register-tiled wide kernel in `crate::simd`:
    /// const-width column tiles with 4-row register accumulators. Each
    /// output element still accumulates in ascending-`k` order, so results
    /// are bit-identical to the naive triple loop for finite operands (see
    /// the module docs of `simd` for the exact FP contract).
    pub fn matmul_into(&self, other: &Tensor, out: &mut [f64]) {
        let (m, k, n) = self.matmul_dims(other);
        assert_eq!(out.len(), m * n, "matmul_into output length");
        crate::simd::mm(&self.data, m, k, &other.data, n, out);
    }

    /// `self @ otherᵀ` without materialising the transpose: `[m,k] x [p,k]
    /// -> [m,p]`. Both operands are walked along contiguous rows.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, p) = (self.shape.rows(), other.shape.rows());
        let mut out = vec![0.0; m * p];
        self.matmul_nt_into(other, &mut out);
        Tensor { shape: Shape::D2(m, p), data: Arc::new(out) }
    }

    /// `self @ otherᵀ` into a caller-provided buffer (fully overwritten).
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut [f64]) {
        let (m, k) = match self.shape {
            Shape::D2(m, k) => (m, k),
            Shape::D1(k) => (1, k),
        };
        let (p, k2) = match other.shape {
            Shape::D2(p, k2) => (p, k2),
            Shape::D1(k2) => (1, k2),
        };
        assert_eq!(k, k2, "matmul_nt inner-dim mismatch {} x {}ᵀ", self.shape, other.shape);
        assert_eq!(out.len(), m * p, "matmul_nt_into output length");
        // Each output element is a length-k dot product — a serial FP
        // reduction the compiler may not reorder. The wide kernel packs
        // `otherᵀ` into a k-major panel once, turning the strided row walk
        // into contiguous vector FMAs while keeping every dot's
        // accumulation order (and thus the result bits) unchanged.
        crate::simd::mm_nt(&self.data, m, k, &other.data, p, out);
    }

    /// `selfᵀ @ other` without materialising the transpose: `[k,m] x [k,n]
    /// -> [m,n]`. The k-outer loop streams contiguous rows of both inputs.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (m, n) = (self.shape.cols(), other.shape.cols());
        let mut out = vec![0.0; m * n];
        self.matmul_tn_into(other, &mut out);
        Tensor { shape: Shape::D2(m, n), data: Arc::new(out) }
    }

    /// `selfᵀ @ other` into a caller-provided zeroed buffer.
    pub fn matmul_tn_into(&self, other: &Tensor, out: &mut [f64]) {
        let (k, m) = match self.shape {
            Shape::D2(k, m) => (k, m),
            Shape::D1(k) => (k, 1),
        };
        let (k2, n) = match other.shape {
            Shape::D2(k2, n) => (k2, n),
            Shape::D1(k2) => (k2, 1),
        };
        assert_eq!(k, k2, "matmul_tn inner-dim mismatch {}ᵀ x {}", self.shape, other.shape);
        assert_eq!(out.len(), m * n, "matmul_tn_into output length");
        crate::simd::mm_tn(&self.data, k, m, &other.data, n, out);
    }

    /// Matrix transpose; vectors become `[1, n]` row matrices transposed to `[n, 1]`.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = match self.shape {
            Shape::D2(r, c) => (r, c),
            Shape::D1(n) => (1, n),
        };
        let mut data = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor { shape: Shape::D2(c, r), data: Arc::new(data) }
    }

    /// Column-sum: `[n,k] -> [k]`.
    pub fn sum_rows(&self) -> Tensor {
        let c = match self.shape {
            Shape::D2(_, c) => c,
            Shape::D1(n) => n,
        };
        let mut out = vec![0.0; c];
        crate::simd::sum_rows(&self.data, c, &mut out);
        Tensor { shape: Shape::D1(c), data: Arc::new(out) }
    }

    /// Replicate a `[k]` vector into an `[n, k]` matrix.
    pub fn broadcast_rows(&self, n: usize) -> Tensor {
        let k = match self.shape {
            Shape::D1(k) => k,
            Shape::D2(1, k) => k,
            s => panic!("broadcast_rows on shape {s}"),
        };
        let mut data = Vec::with_capacity(n * k);
        for _ in 0..n {
            data.extend_from_slice(&self.data[..k]);
        }
        Tensor { shape: Shape::D2(n, k), data: Arc::new(data) }
    }

    /// Gather rows by index: `out[i] = self[idx[i]]`.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let c = self.shape.cols();
        let r = self.shape.rows();
        for &i in idx {
            assert!(i < r, "gather_rows index {i} out of range {r}");
        }
        let mut data = vec![0.0; idx.len() * c];
        crate::simd::gather_rows(&self.data, c, idx, &mut data);
        let shape = match self.shape {
            Shape::D1(_) => Shape::D1(idx.len()),
            Shape::D2(..) => Shape::D2(idx.len(), c),
        };
        Tensor { shape, data: Arc::new(data) }
    }

    /// Scatter-add rows into a fresh `[n, cols]` (or `[n]`) tensor:
    /// `out[idx[i]] += self[i]`.
    pub fn scatter_add_rows(&self, idx: &[usize], n: usize) -> Tensor {
        let c = self.shape.cols();
        assert_eq!(self.shape.rows(), idx.len(), "scatter_add_rows index count");
        for &i in idx {
            assert!(i < n, "scatter_add_rows index {i} out of range {n}");
        }
        let mut data = vec![0.0; n * c];
        crate::simd::scatter_add_rows(&self.data, c, idx, &mut data);
        let shape = match self.shape {
            Shape::D1(_) => Shape::D1(n),
            Shape::D2(..) => Shape::D2(n, c),
        };
        Tensor { shape, data: Arc::new(data) }
    }

    /// Scale row `i` of a matrix by `v[i]` (column-vector broadcast multiply).
    pub fn mul_col_vec(&self, v: &Tensor) -> Tensor {
        let (r, c) = match self.shape {
            Shape::D2(r, c) => (r, c),
            Shape::D1(n) => (n, 1),
        };
        assert_eq!(v.shape.len(), r, "mul_col_vec length mismatch");
        let mut data = vec![0.0; r * c];
        crate::simd::row_scale(&self.data, c, &v.data, &mut data);
        Tensor { shape: self.shape, data: Arc::new(data) }
    }

    /// Row-wise dot product of two same-shape matrices: `out[i] = Σ_j a[i,j] b[i,j]`.
    pub fn rowwise_dot(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "rowwise_dot shape mismatch");
        let (r, c) = match self.shape {
            Shape::D2(r, c) => (r, c),
            Shape::D1(n) => (n, 1),
        };
        let mut out = vec![0.0; r];
        crate::simd::rowwise_dot(&self.data, &other.data, c, &mut out);
        Tensor { shape: Shape::D1(r), data: Arc::new(out) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_accessors() {
        assert_eq!(Shape::D1(5).len(), 5);
        assert_eq!(Shape::D2(3, 4).len(), 12);
        assert_eq!(Shape::D2(3, 4).rows(), 3);
        assert_eq!(Shape::D2(3, 4).cols(), 4);
        assert_eq!(Shape::D1(5).cols(), 1);
        assert!(Shape::D1(0).is_empty());
        assert!(!Shape::D2(1, 1).is_empty());
    }

    #[test]
    fn construction_and_item() {
        let t = Tensor::scalar(3.5);
        assert_eq!(t.item(), 3.5);
        let m = Tensor::matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.at(1, 0), 3.0);
        assert_eq!(Tensor::zeros(Shape::D1(3)).sum(), 0.0);
        assert_eq!(Tensor::ones(Shape::D2(2, 3)).sum(), 6.0);
        assert_eq!(Tensor::full(Shape::D1(4), 2.0).mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn bad_construction_panics() {
        let _ = Tensor::new(Shape::D1(3), vec![1.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let b = Tensor::vector(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = Tensor::vector(&[1.0, 1.0]);
        a.add_assign(&Tensor::vector(&[2.0, 3.0]));
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.axpy(0.5, &Tensor::vector(&[2.0, 2.0]));
        assert_eq!(a.data(), &[4.0, 5.0]);
    }

    #[test]
    fn clone_shares_and_mutation_unshares() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let mut b = a.clone();
        // The clone aliases the same buffer…
        assert_eq!(a.data().as_ptr(), b.data().as_ptr());
        // …until one side writes.
        b.data_mut()[0] = 9.0;
        assert_eq!(a.data(), &[1.0, 2.0]);
        assert_eq!(b.data(), &[9.0, 2.0]);
    }

    #[test]
    fn unique_data_recovery() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = a.clone();
        // Shared: recovery fails.
        assert!(a.try_unique_data().is_none());
        // Unique again: recovery succeeds.
        assert_eq!(b.try_unique_data(), Some(vec![1.0, 2.0]));
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::matrix(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), Shape::D2(2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::matrix(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_blocked_matches_naive_on_wide_output() {
        // Output wider than one 16-column tile exercises the tiling loop,
        // with an odd remainder width and a row-block remainder.
        let n = 16 * 3 + 5;
        let a = Tensor::matrix(3, 5, (0..15).map(|v| v as f64 * 0.37 - 2.0).collect());
        let b = Tensor::matrix(5, n, (0..5 * n).map(|v| (v % 97) as f64 * 0.11 - 4.0).collect());
        let c = a.matmul(&b);
        for i in 0..3 {
            for j in [0, 1, 15, 16, 47, 48, n - 1] {
                let expect: f64 = (0..5).map(|kk| a.at(i, kk) * b.at(kk, j)).sum();
                assert!((c.at(i, j) - expect).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn transposed_matmul_variants_match_explicit_transpose() {
        let a = Tensor::matrix(2, 3, vec![1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b = Tensor::matrix(4, 3, (0..12).map(|v| v as f64 * 0.25 - 1.0).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
        let c = Tensor::matrix(3, 4, (0..12).map(|v| (v as f64).sin()).collect());
        let d = Tensor::matrix(3, 2, vec![2.0, -1.0, 0.0, 3.0, 1.5, 0.5]);
        assert_eq!(c.matmul_tn(&d), c.transpose().matmul(&d));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), Shape::D2(3, 2));
        assert_eq!(t.at(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn bias_and_row_reductions() {
        let m = Tensor::matrix(2, 3, vec![1.0; 6]);
        let b = Tensor::vector(&[1.0, 2.0, 3.0]);
        let mb = m.add_bias(&b);
        assert_eq!(mb.data(), &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
        assert_eq!(mb.sum_rows().data(), &[4.0, 6.0, 8.0]);
        let br = b.broadcast_rows(2);
        assert_eq!(br.shape(), Shape::D2(2, 3));
        assert_eq!(br.sum_rows().data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let m = Tensor::matrix(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = g.scatter_add_rows(&[2, 0, 2], 3);
        assert_eq!(s.data(), &[1.0, 2.0, 0.0, 0.0, 10.0, 12.0]);
    }

    #[test]
    fn col_vec_and_rowwise_dot() {
        let m = Tensor::matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let v = Tensor::vector(&[10.0, 0.5]);
        assert_eq!(m.mul_col_vec(&v).data(), &[10.0, 20.0, 1.5, 2.0]);
        let d = m.rowwise_dot(&m);
        assert_eq!(d.data(), &[5.0, 25.0]);
    }

    #[test]
    fn reshape_preserves_data_and_shares_buffer() {
        let v = Tensor::vector(&[1.0, 2.0, 3.0, 4.0]);
        let m = v.reshape(Shape::D2(2, 2));
        assert_eq!(m.at(1, 1), 4.0);
        assert_eq!(v.data().as_ptr(), m.data().as_ptr());
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::vector(&[1.0, 2.0]);
        assert!(!t.has_non_finite());
        t.data_mut()[0] = f64::NAN;
        assert!(t.has_non_finite());
    }
}
