//! Batched, lane-friendly dense kernels for the training hot path.
//!
//! The DNNP training step is dominated by tall-skinny dense algebra:
//! matrices with hundreds-to-thousands of rows (pairs, atoms) but only
//! 1–16 columns (embedding and fitting widths). The generic row-loop
//! kernels in `tensor.rs` leave 3–10× on the table for those shapes
//! because the inner trip count is tiny and runtime-sized, so the
//! autovectorizer emits scalar remainder loops and per-row branch
//! overhead dominates.
//!
//! This module provides the wide replacements. There is no `std::simd`
//! on stable, so lanes are expressed as **const-generic column tiles**:
//! each microkernel is monomorphized for a fixed tile width `N ≤ 16`,
//! giving the compiler compile-time trip counts it reliably turns into
//! packed `vmulpd`/`vaddpd` (AVX-512: two 8-lane registers per row of a
//! 16-wide tile). `scripts/asm_check.sh` pins that property.
//!
//! ## FP-semantics contract (see DESIGN.md §10)
//!
//! Every kernel accumulates each **output element independently, in
//! strictly ascending `k` order**, exactly like a naive triple loop:
//!
//! * register tiles block rows/columns, never the reduction axis;
//! * multiplies and adds stay separate instructions (no `mul_add`
//!   contraction, which would change rounding);
//! * there is **no zero-skip**: earlier kernels skipped `a == 0.0`
//!   multiplier rows. For finite operands the results are bit-identical
//!   (a `±0.0` contribution never flips a `+0.0`-initialised
//!   accumulator), but `0.0 × NaN/∞` now propagates `NaN` where the
//!   skipping kernels silently dropped it. Training data is guarded
//!   finite by the divergence sentinels, so campaign artifacts are
//!   byte-identical across the switch.

/// Widest column tile: 16 doubles = two AVX-512 registers (four AVX2).
const TILE: usize = 16;

/// Row-block factor: accumulators for 4 rows of a tile live in registers
/// across the whole reduction, quartering traffic on the shared B row.
const RBLOCK: usize = 4;

thread_local! {
    /// Scratch for the `mm_nt` transpose pack, reused across calls.
    static PACK: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// `out[m,n] += a[m,k] @ b[k,n]`, all row-major and dense.
///
/// Columns are processed in const-width tiles (widest first) so every
/// inner loop has a compile-time trip count.
pub(crate) fn mm(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    each_col_tile(n, |j, w| mm_dispatch(w, a, m, k, &b[j..], n, &mut out[j..], n));
}

/// `out[m,p] = a[m,k] @ b[p,k]ᵀ` (overwrites `out`).
///
/// The old layout walked 8 strided rows of `b` in lockstep — scalar
/// loads the vectorizer cannot coalesce. Packing `bᵀ` once into a
/// k-major scratch panel turns the kernel into the plain `mm` shape;
/// each dot still accumulates in ascending `k` order, so results are
/// bit-identical to the unpacked kernel.
pub(crate) fn mm_nt(a: &[f64], m: usize, k: usize, b: &[f64], p: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), p * k);
    debug_assert_eq!(out.len(), m * p);
    out.fill(0.0);
    if m == 0 || p == 0 || k == 0 {
        return;
    }
    PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        pack.clear();
        pack.resize(k * p, 0.0);
        for (j, brow) in b.chunks_exact(k).enumerate() {
            for (kk, &v) in brow.iter().enumerate() {
                pack[kk * p + j] = v;
            }
        }
        mm(a, m, k, &pack, p, out);
    });
}

/// `out[m,n] += a[k,m]ᵀ @ b[k,n]` without materialising the transpose.
///
/// The reduction axis is the (large) row count `k`; consecutive output
/// rows read consecutive elements of each `a` row, so blocking 4 output
/// rows keeps the loads contiguous and the accumulators in registers.
pub(crate) fn mm_tn(a: &[f64], k: usize, m: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    each_col_tile(n, |j, w| mm_tn_dispatch(w, a, k, m, &b[j..], n, &mut out[j..], n));
}

/// Split `n` columns into const-width tiles, widest first.
fn each_col_tile(n: usize, mut f: impl FnMut(usize, usize)) {
    let mut j = 0;
    while j < n {
        let w = (n - j).min(TILE);
        f(j, w);
        j += w;
    }
}

/// Monomorphization dispatch for [`mm_tile`]: `w ∈ 1..=16`.
#[allow(clippy::too_many_arguments)]
fn mm_dispatch(w: usize, a: &[f64], m: usize, k: usize, b: &[f64], ldb: usize, out: &mut [f64], ldo: usize) {
    macro_rules! arms {
        ($($n:literal),*) => {
            match w {
                $($n => mm_tile::<$n>(a, m, k, b, ldb, out, ldo),)*
                _ => unreachable!("column tile width {w} out of range"),
            }
        };
    }
    arms!(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
}

/// Monomorphization dispatch for [`mm_tn_tile`]: `w ∈ 1..=16`.
#[allow(clippy::too_many_arguments)]
fn mm_tn_dispatch(w: usize, a: &[f64], k: usize, m: usize, b: &[f64], ldb: usize, out: &mut [f64], ldo: usize) {
    macro_rules! arms {
        ($($n:literal),*) => {
            match w {
                $($n => mm_tn_tile::<$n>(a, k, m, b, ldb, out, ldo),)*
                _ => unreachable!("column tile width {w} out of range"),
            }
        };
    }
    arms!(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)
}

/// One `m × N` output tile of `out += a @ b`, with `b`/`out` column
/// panels of leading dimension `ldb`/`ldo`.
///
/// `#[inline(never)]` keeps one monomorphized symbol per width so
/// `scripts/asm_check.sh` can audit the emitted vector instructions.
#[inline(never)]
fn mm_tile<const N: usize>(
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    ldb: usize,
    out: &mut [f64],
    ldo: usize,
) {
    let mut i = 0;
    while i + RBLOCK <= m {
        let arows: [&[f64]; RBLOCK] = std::array::from_fn(|r| &a[(i + r) * k..(i + r) * k + k]);
        let mut acc = [[0.0f64; N]; RBLOCK];
        for (r, accr) in acc.iter_mut().enumerate() {
            accr.copy_from_slice(&out[(i + r) * ldo..(i + r) * ldo + N]);
        }
        for kk in 0..k {
            let brow: &[f64; N] = b[kk * ldb..kk * ldb + N].try_into().unwrap();
            for (accr, arow) in acc.iter_mut().zip(&arows) {
                let av = arow[kk];
                for (o, &bv) in accr.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out[(i + r) * ldo..(i + r) * ldo + N].copy_from_slice(accr);
        }
        i += RBLOCK;
    }
    while i < m {
        let arow = &a[i * k..i * k + k];
        let mut acc = [0.0f64; N];
        acc.copy_from_slice(&out[i * ldo..i * ldo + N]);
        for (kk, &av) in arow.iter().enumerate() {
            let brow: &[f64; N] = b[kk * ldb..kk * ldb + N].try_into().unwrap();
            for (o, &bv) in acc.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
        out[i * ldo..i * ldo + N].copy_from_slice(&acc);
        i += 1;
    }
}

/// One `m × N` output tile of `out += aᵀ @ b`: `a` is `[k,m]`, reduction
/// over its rows, 4 output rows blocked so the `a` loads are contiguous.
#[inline(never)]
fn mm_tn_tile<const N: usize>(
    a: &[f64],
    k: usize,
    m: usize,
    b: &[f64],
    ldb: usize,
    out: &mut [f64],
    ldo: usize,
) {
    let mut i = 0;
    while i + RBLOCK <= m {
        let mut acc = [[0.0f64; N]; RBLOCK];
        for (r, accr) in acc.iter_mut().enumerate() {
            accr.copy_from_slice(&out[(i + r) * ldo..(i + r) * ldo + N]);
        }
        for kk in 0..k {
            let avals: &[f64; RBLOCK] = a[kk * m + i..kk * m + i + RBLOCK].try_into().unwrap();
            let brow: &[f64; N] = b[kk * ldb..kk * ldb + N].try_into().unwrap();
            for (accr, &av) in acc.iter_mut().zip(avals) {
                for (o, &bv) in accr.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out[(i + r) * ldo..(i + r) * ldo + N].copy_from_slice(accr);
        }
        i += RBLOCK;
    }
    while i < m {
        let mut acc = [0.0f64; N];
        acc.copy_from_slice(&out[i * ldo..i * ldo + N]);
        for kk in 0..k {
            let av = a[kk * m + i];
            let brow: &[f64; N] = b[kk * ldb..kk * ldb + N].try_into().unwrap();
            for (o, &bv) in acc.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
        out[i * ldo..i * ldo + N].copy_from_slice(&acc);
        i += 1;
    }
}

/// `out[i·c..][..c] = x[i·c..][..c] · s[i]` — the `mul_col_vec` kernel,
/// one fused pass with const-width rows for the common narrow shapes.
pub(crate) fn row_scale(x: &[f64], c: usize, s: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), s.len() * c);
    debug_assert_eq!(out.len(), x.len());
    macro_rules! fixed {
        ($n:literal) => {{
            for ((orow, xrow), &sv) in
                out.chunks_exact_mut($n).zip(x.chunks_exact($n)).zip(s)
            {
                let xrow: &[f64; $n] = xrow.try_into().unwrap();
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o = xv * sv;
                }
            }
        }};
    }
    match c {
        1 => fixed!(1),
        2 => fixed!(2),
        3 => fixed!(3),
        4 => fixed!(4),
        6 => fixed!(6),
        8 => fixed!(8),
        16 => fixed!(16),
        _ => {
            for ((orow, xrow), &sv) in
                out.chunks_exact_mut(c.max(1)).zip(x.chunks_exact(c.max(1))).zip(s)
            {
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o = xv * sv;
                }
            }
        }
    }
}

/// Row gather: `out[i] = x[idx[i]]`, const-width rows.
pub(crate) fn gather_rows(x: &[f64], c: usize, idx: &[usize], out: &mut [f64]) {
    debug_assert_eq!(out.len(), idx.len() * c);
    macro_rules! fixed {
        ($n:literal) => {{
            for (orow, &i) in out.chunks_exact_mut($n).zip(idx) {
                let xrow: &[f64; $n] = x[i * $n..i * $n + $n].try_into().unwrap();
                orow.copy_from_slice(xrow);
            }
        }};
    }
    match c {
        1 => fixed!(1),
        3 => fixed!(3),
        4 => fixed!(4),
        6 => fixed!(6),
        16 => fixed!(16),
        _ => {
            for (orow, &i) in out.chunks_exact_mut(c.max(1)).zip(idx) {
                orow.copy_from_slice(&x[i * c..i * c + c]);
            }
        }
    }
}

/// Row scatter-add: `out[idx[i]] += x[i]`, const-width rows. Rows are
/// visited in ascending `i`, so each destination accumulates in the same
/// order as the naive loop — bit-identical.
pub(crate) fn scatter_add_rows(x: &[f64], c: usize, idx: &[usize], out: &mut [f64]) {
    debug_assert_eq!(x.len(), idx.len() * c);
    macro_rules! fixed {
        ($n:literal) => {{
            for (xrow, &i) in x.chunks_exact($n).zip(idx) {
                let xrow: &[f64; $n] = xrow.try_into().unwrap();
                let orow = &mut out[i * $n..i * $n + $n];
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += xv;
                }
            }
        }};
    }
    match c {
        1 => fixed!(1),
        3 => fixed!(3),
        4 => fixed!(4),
        6 => fixed!(6),
        16 => fixed!(16),
        _ => {
            for (xrow, &i) in x.chunks_exact(c.max(1)).zip(idx) {
                let orow = &mut out[i * c..i * c + c];
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += xv;
                }
            }
        }
    }
}

/// `[n,k] + [k]` bias broadcast: `out[i·c+j] = x[i·c+j] + bias[j]`.
pub(crate) fn add_bias(x: &[f64], c: usize, bias: &[f64], out: &mut [f64]) {
    debug_assert_eq!(bias.len(), c);
    debug_assert_eq!(x.len(), out.len());
    macro_rules! fixed {
        ($n:literal) => {{
            let bias: &[f64; $n] = bias.try_into().unwrap();
            for (orow, xrow) in out.chunks_exact_mut($n).zip(x.chunks_exact($n)) {
                for ((o, &xv), &bv) in orow.iter_mut().zip(xrow).zip(bias) {
                    *o = xv + bv;
                }
            }
        }};
    }
    match c {
        1 => fixed!(1),
        3 => fixed!(3),
        4 => fixed!(4),
        6 => fixed!(6),
        8 => fixed!(8),
        16 => fixed!(16),
        _ => {
            for (orow, xrow) in out.chunks_exact_mut(c.max(1)).zip(x.chunks_exact(c.max(1))) {
                for ((o, &xv), &bv) in orow.iter_mut().zip(xrow).zip(bias) {
                    *o = xv + bv;
                }
            }
        }
    }
}

/// In-place `[n,k] += [k]` bias broadcast: `out[i·c+j] += bias[j]`.
pub(crate) fn add_bias_inplace(out: &mut [f64], c: usize, bias: &[f64]) {
    debug_assert_eq!(bias.len(), c);
    macro_rules! fixed {
        ($n:literal) => {{
            let bias: &[f64; $n] = bias.try_into().unwrap();
            for orow in out.chunks_exact_mut($n) {
                for (o, &bv) in orow.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
        }};
    }
    match c {
        1 => fixed!(1),
        3 => fixed!(3),
        4 => fixed!(4),
        6 => fixed!(6),
        8 => fixed!(8),
        16 => fixed!(16),
        _ => {
            for orow in out.chunks_exact_mut(c.max(1)) {
                for (o, &bv) in orow.iter_mut().zip(bias) {
                    *o += bv;
                }
            }
        }
    }
}

/// Column sums accumulated in ascending row order: `out[j] += Σ_i x[i,j]`.
pub(crate) fn sum_rows(x: &[f64], c: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), c);
    macro_rules! fixed {
        ($n:literal) => {{
            let out: &mut [f64; $n] = out.try_into().unwrap();
            for xrow in x.chunks_exact($n) {
                for (o, &xv) in out.iter_mut().zip(xrow) {
                    *o += xv;
                }
            }
        }};
    }
    match c {
        1 => fixed!(1),
        3 => fixed!(3),
        4 => fixed!(4),
        6 => fixed!(6),
        8 => fixed!(8),
        16 => fixed!(16),
        _ => {
            for xrow in x.chunks_exact(c.max(1)) {
                for (o, &xv) in out.iter_mut().zip(xrow) {
                    *o += xv;
                }
            }
        }
    }
}

/// Row-wise dot product `out[i] = Σ_j a[i,j]·b[i,j]`, ascending `j`.
pub(crate) fn rowwise_dot(a: &[f64], b: &[f64], c: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len() * c);
    macro_rules! fixed {
        ($n:literal) => {{
            for ((o, arow), brow) in
                out.iter_mut().zip(a.chunks_exact($n)).zip(b.chunks_exact($n))
            {
                let mut acc = 0.0;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }};
    }
    match c {
        1 => fixed!(1),
        3 => fixed!(3),
        4 => fixed!(4),
        6 => fixed!(6),
        16 => fixed!(16),
        _ => {
            for ((o, arow), brow) in
                out.iter_mut().zip(a.chunks_exact(c.max(1))).zip(b.chunks_exact(c.max(1)))
            {
                let mut acc = 0.0;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
    }
}

/// Lane width of the interleaved bulk-tanh block: four 8-lane AVX-512
/// vectors (eight AVX2) of **independent** Horner chains per iteration,
/// hiding the serial multiply–add latency the one-chain loop was bound by.
pub(crate) const TANH_LANES: usize = 32;

/// Interleaved bulk tanh over one lane block. Per-element arithmetic is
/// exactly the scalar sequence in `Unary::eval_slice` — elements are
/// independent, so regrouping them across lanes cannot change any bits.
#[inline(never)]
pub(crate) fn tanh_block(out: &mut [f64; TANH_LANES]) {
    const LOG2_E: f64 = std::f64::consts::LOG2_E;
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    const W: usize = TANH_LANES;
    let mut t = [0.0f64; W];
    for (tv, &x) in t.iter_mut().zip(out.iter()) {
        *tv = (2.0 * x).clamp(-40.0, 40.0);
    }
    let mut kf = [0.0f64; W];
    for (kv, &tv) in kf.iter_mut().zip(&t) {
        *kv = (tv * LOG2_E).round();
    }
    let mut r = [0.0f64; W];
    for ((rv, &tv), &kv) in r.iter_mut().zip(&t).zip(&kf) {
        *rv = (tv - kv * LN2_HI) - kv * LN2_LO;
    }
    let mut p = [1.0 / 479_001_600.0; W];
    for coeff in [
        1.0 / 39_916_800.0,
        1.0 / 3_628_800.0,
        1.0 / 362_880.0,
        1.0 / 40_320.0,
        1.0 / 5_040.0,
        1.0 / 720.0,
        1.0 / 120.0,
        1.0 / 24.0,
        1.0 / 6.0,
        0.5,
        1.0,
        1.0,
    ] {
        for (pv, &rv) in p.iter_mut().zip(&r) {
            *pv = *pv * rv + coeff;
        }
    }
    for ((o, &pv), &kv) in out.iter_mut().zip(&p).zip(&kf) {
        let u = kv + 6_755_399_441_055_744.0;
        let e = pv * f64::from_bits((u.to_bits() << 52).wrapping_add(1023u64 << 52));
        *o = (e - 1.0) / (e + 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mm(a: &[f64], m: usize, k: usize, b: &[f64], n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    out[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        out
    }

    fn fill(len: usize, seed: f64) -> Vec<f64> {
        (0..len).map(|i| ((i as f64 + seed) * 0.7315).sin() * 3.0).collect()
    }

    #[test]
    fn mm_matches_naive_bitwise_across_sizes() {
        // Odd sizes straddle every tile width and the row-block remainder.
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 7), (9, 2, 16), (13, 5, 17), (6, 4, 33), (4, 8, 16)] {
            let a = fill(m * k, 1.0);
            let b = fill(k * n, 2.0);
            let mut out = vec![0.0; m * n];
            mm(&a, m, k, &b, n, &mut out);
            let want = naive_mm(&a, m, k, &b, n);
            for (i, (&got, &w)) in out.iter().zip(&want).enumerate() {
                assert_eq!(got.to_bits(), w.to_bits(), "mm {m}x{k}x{n} element {i}");
            }
        }
    }

    #[test]
    fn mm_handles_empty_operands() {
        let mut out = vec![];
        mm(&[], 0, 3, &fill(9, 0.0), 3, &mut out);
        mm(&fill(6, 0.0), 2, 3, &[], 0, &mut out);
        let mut out1 = vec![0.0; 4];
        mm(&[], 2, 0, &[], 2, &mut out1);
        assert_eq!(out1, vec![0.0; 4]);
    }

    #[test]
    fn mm_nt_matches_naive_bitwise() {
        for &(m, k, p) in &[(1, 1, 1), (7, 3, 5), (4, 4, 9), (13, 6, 18), (3, 1, 2)] {
            let a = fill(m * k, 3.0);
            let b = fill(p * k, 4.0);
            let mut out = vec![f64::NAN; m * p];
            mm_nt(&a, m, k, &b, p, &mut out);
            // Reference: each dot in ascending k order.
            for i in 0..m {
                for j in 0..p {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a[i * k + kk] * b[j * k + kk];
                    }
                    assert_eq!(out[i * p + j].to_bits(), acc.to_bits(), "nt {m}x{k}x{p} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn mm_tn_matches_naive_bitwise() {
        for &(k, m, n) in &[(1, 1, 1), (9, 3, 5), (21, 4, 4), (8, 6, 17), (5, 2, 1)] {
            let a = fill(k * m, 5.0);
            let b = fill(k * n, 6.0);
            let mut out = vec![0.0; m * n];
            mm_tn(&a, k, m, &b, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a[kk * m + i] * b[kk * n + j];
                    }
                    assert_eq!(out[i * n + j].to_bits(), acc.to_bits(), "tn {k}x{m}x{n} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn row_helpers_match_naive() {
        for &c in &[1usize, 3, 4, 5, 6, 16] {
            let r = 11;
            let x = fill(r * c, 7.0);
            let s = fill(r, 8.0);
            let mut out = vec![0.0; r * c];
            row_scale(&x, c, &s, &mut out);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(out[i * c + j].to_bits(), (x[i * c + j] * s[i]).to_bits());
                }
            }
            let idx: Vec<usize> = (0..r).map(|i| (i * 7) % 5).collect();
            let base = fill(5 * c, 9.0);
            let mut g = vec![0.0; r * c];
            gather_rows(&base, c, &idx, &mut g);
            for (row, &i) in idx.iter().enumerate() {
                assert_eq!(&g[row * c..row * c + c], &base[i * c..i * c + c]);
            }
            let mut sc = vec![0.0; 5 * c];
            scatter_add_rows(&g, c, &idx, &mut sc);
            let mut want = vec![0.0; 5 * c];
            for (row, &i) in idx.iter().enumerate() {
                for j in 0..c {
                    want[i * c + j] += g[row * c + j];
                }
            }
            for (a, b) in sc.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
