//! Eager, taped, reverse-mode automatic differentiation.
//!
//! Every operation both computes its value immediately *and* records a node
//! on the [`Tape`]. [`Tape::grad`] walks the tape backwards and expresses
//! each adjoint **as new taped operations**, so gradients are themselves
//! differentiable. This "double backward" capability is what lets the DNNP
//! trainer minimise a force-matching loss: forces are `-∂E/∂x`, and the loss
//! gradient with respect to the network weights therefore needs
//! `∂/∂w (∂E/∂x)`.
//!
//! The design mirrors `tf.gradients` with second-order support, which is
//! what DeePMD-kit relies on in TensorFlow.

use std::cell::RefCell;
use std::rc::Rc;

use crate::tensor::{Shape, Tensor};

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    idx: usize,
}

impl Var {
    /// Position of this variable on its tape (tapes are append-only).
    #[inline]
    pub fn index(&self) -> usize {
        self.idx
    }
}

/// Elementwise nonlinearities known to the tape.
///
/// `Step` and `Clamp01` exist so that the derivatives of the piecewise
/// activations (`relu`, `relu6`) and of the descriptor switching function
/// can themselves be expressed as taped operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unary {
    Tanh,
    Sigmoid,
    Softplus,
    Relu,
    Relu6,
    Exp,
    Sqrt,
    Recip,
    Square,
    /// Heaviside step: `1` for `x > 0`, else `0`. Its derivative is zero.
    Step,
    /// Clamp to `[0, 1]`. Its derivative is the indicator of `(0, 1)`.
    Clamp01,
}

impl Unary {
    fn eval(self, x: f64) -> f64 {
        match self {
            Unary::Tanh => x.tanh(),
            Unary::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            // Numerically stable softplus: max(x, 0) + ln(1 + e^{-|x|}).
            Unary::Softplus => x.max(0.0) + (-x.abs()).exp().ln_1p(),
            Unary::Relu => x.max(0.0),
            Unary::Relu6 => x.clamp(0.0, 6.0),
            Unary::Exp => x.exp(),
            Unary::Sqrt => x.sqrt(),
            Unary::Recip => 1.0 / x,
            Unary::Square => x * x,
            Unary::Step => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Unary::Clamp01 => x.clamp(0.0, 1.0),
        }
    }
}

#[derive(Clone, Debug)]
#[allow(dead_code)] // constant payloads are kept for Debug output even where
                    // the backward pass recomputes them from node shapes
enum Op {
    Const,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f64),
    AddScalar(Var, f64),
    AddBias(Var, Var),
    Matmul(Var, Var),
    Transpose(Var),
    Unary(Unary, Var),
    SumAll(Var),
    SumRows(Var),
    BroadcastRows(Var, usize),
    BroadcastScalar(Var, Shape),
    GatherRows(Var, Rc<[usize]>),
    ScatterAddRows(Var, Rc<[usize]>, usize),
    MulColVec(Var, Var),
    RowwiseDot(Var, Var),
    Reshape(Var, Shape),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// An append-only tape of eagerly evaluated tensor operations.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape { nodes: RefCell::new(Vec::new()) }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var { idx: nodes.len() - 1 }
    }

    /// Record a constant (a leaf). Leaves are also the differentiation targets.
    pub fn constant(&self, t: Tensor) -> Var {
        self.push(t, Op::Const)
    }

    /// Record a scalar constant.
    pub fn scalar(&self, v: f64) -> Var {
        self.constant(Tensor::scalar(v))
    }

    /// Clone out the current value of a variable.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.idx].value.clone()
    }

    /// Shape of a variable's value.
    pub fn shape(&self, v: Var) -> Shape {
        self.nodes.borrow()[v.idx].value.shape()
    }

    /// The scalar value of a length-1 variable.
    pub fn item(&self, v: Var) -> f64 {
        self.nodes.borrow()[v.idx].value.item()
    }

    /// True if the variable's value contains NaN or ±∞.
    pub fn has_non_finite(&self, v: Var) -> bool {
        self.nodes.borrow()[v.idx].value.has_non_finite()
    }

    fn binary(&self, a: Var, b: Var, f: impl FnOnce(&Tensor, &Tensor) -> Tensor, op: Op) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            f(&nodes[a.idx].value, &nodes[b.idx].value)
        };
        self.push(value, op)
    }

    fn unary_op(&self, a: Var, f: impl FnOnce(&Tensor) -> Tensor, op: Op) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            f(&nodes[a.idx].value)
        };
        self.push(value, op)
    }

    /// Elementwise sum.
    pub fn add(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.add(y), Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.sub(y), Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.mul(y), Op::Mul(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&self, a: Var) -> Var {
        self.unary_op(a, |x| x.scale(-1.0), Op::Neg(a))
    }

    /// Multiply by a compile-time constant.
    pub fn scale(&self, a: Var, c: f64) -> Var {
        self.unary_op(a, |x| x.scale(c), Op::Scale(a, c))
    }

    /// Add a compile-time constant to every element.
    pub fn add_scalar(&self, a: Var, c: f64) -> Var {
        self.unary_op(a, |x| x.add_scalar(c), Op::AddScalar(a, c))
    }

    /// `[n,k] + [k]` bias broadcast.
    pub fn add_bias(&self, m: Var, bias: Var) -> Var {
        self.binary(m, bias, |x, b| x.add_bias(b), Op::AddBias(m, bias))
    }

    /// Matrix product of two rank-2 variables.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        debug_assert!(matches!(self.shape(a), Shape::D2(..)), "matmul lhs must be 2-D");
        debug_assert!(matches!(self.shape(b), Shape::D2(..)), "matmul rhs must be 2-D");
        self.binary(a, b, |x, y| x.matmul(y), Op::Matmul(a, b))
    }

    /// Matrix transpose of a rank-2 variable.
    pub fn transpose(&self, a: Var) -> Var {
        self.unary_op(a, |x| x.transpose(), Op::Transpose(a))
    }

    /// Apply an elementwise nonlinearity.
    pub fn unary(&self, k: Unary, a: Var) -> Var {
        self.unary_op(a, |x| x.map(|v| k.eval(v)), Op::Unary(k, a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.unary(Unary::Tanh, a)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        self.unary(Unary::Sigmoid, a)
    }

    /// Softplus `ln(1+e^x)`.
    pub fn softplus(&self, a: Var) -> Var {
        self.unary(Unary::Softplus, a)
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        self.unary(Unary::Relu, a)
    }

    /// ReLU clipped at 6.
    pub fn relu6(&self, a: Var) -> Var {
        self.unary(Unary::Relu6, a)
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        self.unary(Unary::Exp, a)
    }

    /// Elementwise square root.
    pub fn sqrt(&self, a: Var) -> Var {
        self.unary(Unary::Sqrt, a)
    }

    /// Elementwise reciprocal.
    pub fn recip(&self, a: Var) -> Var {
        self.unary(Unary::Recip, a)
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        self.unary(Unary::Square, a)
    }

    /// Heaviside step (derivative of `relu`).
    pub fn step(&self, a: Var) -> Var {
        self.unary(Unary::Step, a)
    }

    /// Clamp into the unit interval.
    pub fn clamp01(&self, a: Var) -> Var {
        self.unary(Unary::Clamp01, a)
    }

    /// Sum every element into a scalar `[1]`.
    pub fn sum_all(&self, a: Var) -> Var {
        self.unary_op(a, |x| Tensor::scalar(x.sum()), Op::SumAll(a))
    }

    /// Column sums: `[n,k] -> [k]`.
    pub fn sum_rows(&self, a: Var) -> Var {
        self.unary_op(a, |x| x.sum_rows(), Op::SumRows(a))
    }

    /// Replicate a `[k]` vector into `[n,k]`.
    pub fn broadcast_rows(&self, a: Var, n: usize) -> Var {
        self.unary_op(a, |x| x.broadcast_rows(n), Op::BroadcastRows(a, n))
    }

    /// Replicate a scalar into an arbitrary shape.
    pub fn broadcast_scalar(&self, a: Var, shape: Shape) -> Var {
        self.unary_op(
            a,
            |x| Tensor::full(shape, x.item()),
            Op::BroadcastScalar(a, shape),
        )
    }

    /// Gather rows by index.
    pub fn gather_rows(&self, a: Var, idx: Rc<[usize]>) -> Var {
        self.unary_op(a, |x| x.gather_rows(&idx), Op::GatherRows(a, Rc::clone(&idx)))
    }

    /// Scatter-add rows into a zeroed tensor with `n` rows.
    pub fn scatter_add_rows(&self, a: Var, idx: Rc<[usize]>, n: usize) -> Var {
        self.unary_op(
            a,
            |x| x.scatter_add_rows(&idx, n),
            Op::ScatterAddRows(a, Rc::clone(&idx), n),
        )
    }

    /// Scale row `i` of `m` by `v[i]`.
    pub fn mul_col_vec(&self, m: Var, v: Var) -> Var {
        self.binary(m, v, |x, y| x.mul_col_vec(y), Op::MulColVec(m, v))
    }

    /// Row-wise dot product, producing `[n]`.
    pub fn rowwise_dot(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.rowwise_dot(y), Op::RowwiseDot(a, b))
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshape(&self, a: Var, shape: Shape) -> Var {
        self.unary_op(a, |x| x.reshape(shape), Op::Reshape(a, shape))
    }

    /// A zero constant with the same shape as `a`.
    pub fn zeros_like(&self, a: Var) -> Var {
        let shape = self.shape(a);
        self.constant(Tensor::zeros(shape))
    }

    /// Derivative `f'(x)` of a unary op, built from taped primitives so that
    /// it is itself differentiable. `y` is the already-computed `f(x)`.
    fn unary_derivative(&self, k: Unary, x: Var, y: Var) -> Var {
        match k {
            // tanh' = 1 - tanh².
            Unary::Tanh => self.add_scalar(self.scale(self.square(y), -1.0), 1.0),
            // σ' = σ(1-σ).
            Unary::Sigmoid => self.mul(y, self.add_scalar(self.scale(y, -1.0), 1.0)),
            // softplus' = σ.
            Unary::Softplus => self.sigmoid(x),
            Unary::Relu => self.step(x),
            // relu6' = 1 on (0,6): step(x)·step(6-x).
            Unary::Relu6 => {
                let six_minus = self.add_scalar(self.scale(x, -1.0), 6.0);
                self.mul(self.step(x), self.step(six_minus))
            }
            Unary::Exp => y,
            // sqrt' = 1/(2√x).
            Unary::Sqrt => self.scale(self.recip(y), 0.5),
            // (1/x)' = -1/x² = -y².
            Unary::Recip => self.scale(self.square(y), -1.0),
            Unary::Square => self.scale(x, 2.0),
            Unary::Step => self.zeros_like(x),
            // clamp01' = 1 on (0,1): step(x)·step(1-x).
            Unary::Clamp01 => {
                let one_minus = self.add_scalar(self.scale(x, -1.0), 1.0);
                self.mul(self.step(x), self.step(one_minus))
            }
        }
    }

    /// Reverse-mode gradients of `sum(y)` with respect to each entry in `wrt`.
    ///
    /// The returned gradients are ordinary tape variables, so calling `grad`
    /// on an expression built from them yields correct second-order
    /// derivatives. Variables that `y` does not depend on receive zero
    /// gradients of the appropriate shape.
    pub fn grad(&self, y: Var, wrt: &[Var]) -> Vec<Var> {
        let limit = y.idx + 1;
        let mut adjoint: Vec<Option<Var>> = vec![None; limit];
        let seed_shape = self.shape(y);
        adjoint[y.idx] = Some(self.constant(Tensor::ones(seed_shape)));

        for i in (0..limit).rev() {
            let Some(g) = adjoint[i] else { continue };
            let op = self.nodes.borrow()[i].op.clone();
            let accumulate = |slot: Var, contribution: Var, adjoint: &mut Vec<Option<Var>>| {
                let entry = &mut adjoint[slot.idx];
                *entry = Some(match *entry {
                    None => contribution,
                    Some(existing) => self.add(existing, contribution),
                });
            };
            match op {
                Op::Const => {}
                Op::Add(a, b) => {
                    accumulate(a, g, &mut adjoint);
                    accumulate(b, g, &mut adjoint);
                }
                Op::Sub(a, b) => {
                    accumulate(a, g, &mut adjoint);
                    let ng = self.neg(g);
                    accumulate(b, ng, &mut adjoint);
                }
                Op::Mul(a, b) => {
                    let ga = self.mul(g, b);
                    let gb = self.mul(g, a);
                    accumulate(a, ga, &mut adjoint);
                    accumulate(b, gb, &mut adjoint);
                }
                Op::Neg(a) => {
                    let ng = self.neg(g);
                    accumulate(a, ng, &mut adjoint);
                }
                Op::Scale(a, c) => {
                    let gs = self.scale(g, c);
                    accumulate(a, gs, &mut adjoint);
                }
                Op::AddScalar(a, _) => accumulate(a, g, &mut adjoint),
                Op::AddBias(m, bias) => {
                    accumulate(m, g, &mut adjoint);
                    let gb = self.sum_rows(g);
                    accumulate(bias, gb, &mut adjoint);
                }
                Op::Matmul(a, b) => {
                    let bt = self.transpose(b);
                    let ga = self.matmul(g, bt);
                    let at = self.transpose(a);
                    let gb = self.matmul(at, g);
                    accumulate(a, ga, &mut adjoint);
                    accumulate(b, gb, &mut adjoint);
                }
                Op::Transpose(a) => {
                    let gt = self.transpose(g);
                    accumulate(a, gt, &mut adjoint);
                }
                Op::Unary(k, x) => {
                    let d = self.unary_derivative(k, x, Var { idx: i });
                    let gx = self.mul(g, d);
                    accumulate(x, gx, &mut adjoint);
                }
                Op::SumAll(a) => {
                    let shape = self.shape(a);
                    let gb = self.broadcast_scalar(g, shape);
                    accumulate(a, gb, &mut adjoint);
                }
                Op::SumRows(a) => {
                    let n = self.shape(a).rows();
                    let gb = self.broadcast_rows(g, n);
                    accumulate(a, gb, &mut adjoint);
                }
                Op::BroadcastRows(a, _) => {
                    let gs = self.sum_rows(g);
                    accumulate(a, gs, &mut adjoint);
                }
                Op::BroadcastScalar(a, _) => {
                    let gs = self.sum_all(g);
                    accumulate(a, gs, &mut adjoint);
                }
                Op::GatherRows(a, idx) => {
                    let n = self.shape(a).rows();
                    let gs = self.scatter_add_rows(g, idx, n);
                    accumulate(a, gs, &mut adjoint);
                }
                Op::ScatterAddRows(a, idx, _) => {
                    let gg = self.gather_rows(g, idx);
                    accumulate(a, gg, &mut adjoint);
                }
                Op::MulColVec(m, v) => {
                    let gm = self.mul_col_vec(g, v);
                    let gv = self.rowwise_dot(g, m);
                    accumulate(m, gm, &mut adjoint);
                    accumulate(v, gv, &mut adjoint);
                }
                Op::RowwiseDot(a, b) => {
                    let ga = self.mul_col_vec(b, g);
                    let gb = self.mul_col_vec(a, g);
                    accumulate(a, ga, &mut adjoint);
                    accumulate(b, gb, &mut adjoint);
                }
                Op::Reshape(a, _) => {
                    let shape = self.shape(a);
                    let gr = self.reshape(g, shape);
                    accumulate(a, gr, &mut adjoint);
                }
            }
        }

        wrt.iter()
            .map(|v| {
                assert!(v.idx < limit, "grad target created after output variable");
                adjoint[v.idx].unwrap_or_else(|| self.zeros_like(*v))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
        let h = 1e-6;
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                let mut xm = x.to_vec();
                xp[i] += h;
                xm[i] -= h;
                (f(&xp) - f(&xm)) / (2.0 * h)
            })
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn grad_of_simple_polynomial() {
        // y = sum(x² + 3x), dy/dx = 2x + 3.
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[1.0, -2.0, 0.5]));
        let y = t.sum_all(t.add(t.square(x), t.scale(x, 3.0)));
        let g = t.grad(y, &[x]);
        assert_eq!(t.value(g[0]).data(), &[5.0, -1.0, 4.0]);
    }

    #[test]
    fn grad_matches_finite_difference_mlp() {
        // One hidden layer net, all five paper activations.
        for act in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus, Unary::Relu, Unary::Relu6] {
            let w_data = [0.3, -0.2, 0.5, 0.7, -0.4, 0.1];
            let eval = |w: &[f64]| -> f64 {
                let t = Tape::new();
                let x = t.constant(Tensor::matrix(2, 2, vec![0.4, -1.2, 2.5, 0.3]));
                let w1 = t.constant(Tensor::matrix(2, 2, w[..4].to_vec()));
                let b1 = t.constant(Tensor::vector(&w[4..6]));
                let h = t.unary(act, t.add_bias(t.matmul(x, w1), b1));
                t.item(t.sum_all(t.square(h)))
            };
            let t = Tape::new();
            let x = t.constant(Tensor::matrix(2, 2, vec![0.4, -1.2, 2.5, 0.3]));
            let w1 = t.constant(Tensor::matrix(2, 2, w_data[..4].to_vec()));
            let b1 = t.constant(Tensor::vector(&w_data[4..6]));
            let h = t.unary(act, t.add_bias(t.matmul(x, w1), b1));
            let y = t.sum_all(t.square(h));
            let g = t.grad(y, &[w1, b1]);
            let fd = finite_diff(eval, &w_data);
            let mut analytic = t.value(g[0]).into_data();
            analytic.extend(t.value(g[1]).into_data());
            assert_close(&analytic, &fd, 1e-5);
        }
    }

    #[test]
    fn gather_scatter_gradients() {
        // y = sum(gather(x, [0,0,2])²); dy/dx0 counts both gathers of row 0.
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[2.0, 5.0, -1.0]));
        let idx: Rc<[usize]> = Rc::from(vec![0usize, 0, 2]);
        let g1 = t.gather_rows(x, idx);
        let y = t.sum_all(t.square(g1));
        let g = t.grad(y, &[x]);
        assert_eq!(t.value(g[0]).data(), &[8.0, 0.0, -2.0]);
    }

    #[test]
    fn mul_col_vec_and_rowwise_dot_gradients() {
        let m0 = [1.0, 2.0, 3.0, 4.0];
        let v0 = [0.5, -1.5];
        let eval = |p: &[f64]| -> f64 {
            let t = Tape::new();
            let m = t.constant(Tensor::matrix(2, 2, p[..4].to_vec()));
            let v = t.constant(Tensor::vector(&p[4..6]));
            let s = t.mul_col_vec(m, v);
            let d = t.rowwise_dot(s, m);
            t.item(t.sum_all(t.square(d)))
        };
        let t = Tape::new();
        let m = t.constant(Tensor::matrix(2, 2, m0.to_vec()));
        let v = t.constant(Tensor::vector(&v0));
        let s = t.mul_col_vec(m, v);
        let d = t.rowwise_dot(s, m);
        let y = t.sum_all(t.square(d));
        let g = t.grad(y, &[m, v]);
        let mut p = m0.to_vec();
        p.extend_from_slice(&v0);
        let fd = finite_diff(eval, &p);
        let mut analytic = t.value(g[0]).into_data();
        analytic.extend(t.value(g[1]).into_data());
        assert_close(&analytic, &fd, 1e-5);
    }

    #[test]
    fn double_backward_cubic() {
        // y = sum(x³) → dy/dx = 3x² → d²y/dx² (diag) = 6x.
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[1.5, -0.5, 2.0]));
        let y = t.sum_all(t.mul(t.square(x), x));
        let g = t.grad(y, &[x])[0];
        // Differentiating sum(g) gives the Hessian row sums = 6x for a
        // diagonal Hessian.
        let sg = t.sum_all(g);
        let h = t.grad(sg, &[x])[0];
        assert_close(t.value(h).data(), &[9.0, -3.0, 12.0], 1e-12);
    }

    #[test]
    fn double_backward_through_tanh() {
        // f = tanh(x); check d²f/dx² = -2 tanh (1 - tanh²) via double grad.
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[0.7]));
        let y = t.sum_all(t.tanh(x));
        let g = t.grad(y, &[x])[0];
        let h = t.grad(t.sum_all(g), &[x])[0];
        let v: f64 = 0.7;
        let expected = -2.0 * v.tanh() * (1.0 - v.tanh() * v.tanh());
        assert_close(t.value(h).data(), &[expected], 1e-12);
    }

    #[test]
    fn force_matching_style_second_order() {
        // The critical DNNP pattern: E = net(x); F = -dE/dx;
        // L = sum((F - F*)²); dL/dw checked against finite differences of L.
        let w0 = [0.2, -0.6, 0.4, 0.9, 0.1, -0.3];
        let x0 = [0.5, -1.0];
        let f_star = [0.3, -0.2];
        let loss = |w: &[f64]| -> f64 {
            let t = Tape::new();
            let x = t.constant(Tensor::matrix(1, 2, x0.to_vec()));
            let w1 = t.constant(Tensor::matrix(2, 2, w[..4].to_vec()));
            let w2 = t.constant(Tensor::matrix(2, 1, w[4..6].to_vec()));
            let e = t.sum_all(t.matmul(t.tanh(t.matmul(x, w1)), w2));
            let de_dx = t.grad(e, &[x])[0];
            let f = t.neg(de_dx);
            let fs = t.constant(Tensor::matrix(1, 2, f_star.to_vec()));
            t.item(t.sum_all(t.square(t.sub(f, fs))))
        };
        let t = Tape::new();
        let x = t.constant(Tensor::matrix(1, 2, x0.to_vec()));
        let w1 = t.constant(Tensor::matrix(2, 2, w0[..4].to_vec()));
        let w2 = t.constant(Tensor::matrix(2, 1, w0[4..6].to_vec()));
        let e = t.sum_all(t.matmul(t.tanh(t.matmul(x, w1)), w2));
        let de_dx = t.grad(e, &[x])[0];
        let f = t.neg(de_dx);
        let fs = t.constant(Tensor::matrix(1, 2, f_star.to_vec()));
        let l = t.sum_all(t.square(t.sub(f, fs)));
        let grads = t.grad(l, &[w1, w2]);
        let mut analytic = t.value(grads[0]).into_data();
        analytic.extend(t.value(grads[1]).into_data());
        let fd = finite_diff(loss, &w0);
        assert_close(&analytic, &fd, 1e-4);
    }

    #[test]
    fn grad_of_independent_variable_is_zero() {
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[1.0]));
        let z = t.constant(Tensor::vector(&[4.0, 4.0]));
        let y = t.sum_all(t.square(x));
        let g = t.grad(y, &[z]);
        assert_eq!(t.value(g[0]).data(), &[0.0, 0.0]);
    }

    #[test]
    fn switching_function_composition_is_differentiable() {
        // s(r) = (1/r)·p(clamp01(u)), u = (r-rmin)/(rmax-rmin),
        // p(u) = 1 + u³(-6u² + 15u - 10) — smooth from 1/r to 0.
        let rmin = 2.0;
        let rmax = 6.0;
        let s_of = |r: f64| -> f64 {
            let u = ((r - rmin) / (rmax - rmin)).clamp(0.0, 1.0);
            (1.0 / r) * (1.0 + u * u * u * (-6.0 * u * u + 15.0 * u - 10.0))
        };
        let t = Tape::new();
        let r = t.constant(Tensor::vector(&[1.0, 3.0, 5.9, 7.0]));
        let u = t.clamp01(t.scale(t.add_scalar(r, -rmin), 1.0 / (rmax - rmin)));
        let u3 = t.mul(t.square(u), u);
        let poly = t.add_scalar(
            t.mul(
                u3,
                t.add_scalar(
                    t.add(t.scale(t.square(u), -6.0), t.scale(u, 15.0)),
                    -10.0,
                ),
            ),
            1.0,
        );
        let s = t.mul(t.recip(r), poly);
        let vals = t.value(s);
        for (i, &rv) in [1.0, 3.0, 5.9, 7.0].iter().enumerate() {
            assert!((vals.data()[i] - s_of(rv)).abs() < 1e-12);
        }
        // r < rmin behaves as 1/r; r > rmax is exactly zero.
        assert!((vals.data()[0] - 1.0).abs() < 1e-12);
        assert!(vals.data()[3].abs() < 1e-15);
        // And the whole thing is differentiable.
        let g = t.grad(t.sum_all(s), &[r]);
        let gv = t.value(g[0]);
        assert!((gv.data()[0] + 1.0).abs() < 1e-9); // d(1/r)/dr = -1 at r=1
        assert!(gv.data()[3].abs() < 1e-15);
    }
}
