//! Eager, taped, reverse-mode automatic differentiation.
//!
//! Every operation both computes its value immediately *and* records a node
//! on the [`Tape`]. [`Tape::grad`] walks the tape backwards and expresses
//! each adjoint **as new taped operations**, so gradients are themselves
//! differentiable. This "double backward" capability is what lets the DNNP
//! trainer minimise a force-matching loss: forces are `-∂E/∂x`, and the loss
//! gradient with respect to the network weights therefore needs
//! `∂/∂w (∂E/∂x)`.
//!
//! The design mirrors `tf.gradients` with second-order support, which is
//! what DeePMD-kit relies on in TensorFlow.
//!
//! ## Arena behaviour
//!
//! A training step rebuilds the same graph topology every iteration, so the
//! tape doubles as an arena: [`Tape::reset`] clears the node list while
//! keeping its capacity and recycles every uniquely-owned value buffer into
//! a size-keyed pool. Subsequent steps then run allocation-free — each op
//! draws its output buffer from the pool instead of the global allocator.
//! Buffers still referenced outside the tape (extracted gradients, shared
//! parameter tensors) are simply not recycled, so pooling is invisible to
//! callers.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use crate::tensor::{Shape, Tensor};

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var {
    idx: usize,
}

impl Var {
    /// Position of this variable on its tape (tapes are append-only).
    #[inline]
    pub fn index(&self) -> usize {
        self.idx
    }
}

/// Elementwise nonlinearities known to the tape.
///
/// `Step` and `Clamp01` exist so that the derivatives of the piecewise
/// activations (`relu`, `relu6`) and of the descriptor switching function
/// can themselves be expressed as taped operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unary {
    Tanh,
    Sigmoid,
    Softplus,
    Relu,
    Relu6,
    Exp,
    Sqrt,
    Recip,
    Square,
    /// `1 - x²` — the tanh derivative expressed from the tanh *output*,
    /// fused into one node so backward chains stay short. Its own
    /// derivative is `-2x`, which keeps double-backward closed.
    OneMinusSquare,
    /// Heaviside step: `1` for `x > 0`, else `0`. Its derivative is zero.
    Step,
    /// Clamp to `[0, 1]`. Its derivative is the indicator of `(0, 1)`.
    Clamp01,
}

impl Unary {
    fn eval(self, x: f64) -> f64 {
        match self {
            // tanh as (e^{2x}-1)/(e^{2x}+1): one exp instead of libm's
            // tanh, ~2× faster, with absolute error ≤ 2.3e-16 across the
            // full range (the infinity guard covers e^{2x} overflow).
            Unary::Tanh => {
                let e = (2.0 * x).exp();
                if e.is_infinite() {
                    1.0
                } else {
                    (e - 1.0) / (e + 1.0)
                }
            }
            Unary::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            // Numerically stable softplus: max(x, 0) + ln(1 + e^{-|x|}).
            Unary::Softplus => x.max(0.0) + (-x.abs()).exp().ln_1p(),
            Unary::Relu => x.max(0.0),
            Unary::Relu6 => x.clamp(0.0, 6.0),
            Unary::Exp => x.exp(),
            Unary::Sqrt => x.sqrt(),
            Unary::Recip => 1.0 / x,
            Unary::Square => x * x,
            Unary::OneMinusSquare => -(x * x) + 1.0,
            Unary::Step => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Unary::Clamp01 => x.clamp(0.0, 1.0),
        }
    }

    /// Apply the nonlinearity across a slice in place. `Tanh` — the inner
    /// loop of every training step — gets a branch-free polynomial `exp`
    /// the compiler can auto-vectorize; absolute error vs libm `tanh` stays
    /// below 5e-16 (covered by `bulk_tanh_matches_libm`). Other variants
    /// fall back to the scalar path.
    fn eval_slice(self, out: &mut [f64]) {
        match self {
            Unary::Tanh => {
                const LOG2_E: f64 = std::f64::consts::LOG2_E;
                // ln 2 split hi/lo so `t - k·ln2` stays exact in the hi part.
                const LN2_HI: f64 = 6.931_471_803_691_238e-1;
                const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
                // Full lane blocks go through the interleaved kernel, which
                // runs several independent Horner chains at once instead of
                // serialising on one chain's multiply–add latency. Identical
                // per-element arithmetic; the scalar tail below matches it
                // bit for bit.
                let mut blocks = out.chunks_exact_mut(crate::simd::TANH_LANES);
                for block in &mut blocks {
                    crate::simd::tanh_block(block.try_into().unwrap());
                }
                for o in blocks.into_remainder() {
                    // tanh(x) = (e^t - 1)/(e^t + 1) with t = 2x. Beyond
                    // |t| = 40 the quotient rounds to ±1 exactly, so the
                    // clamp matches the unclamped result (and lets the
                    // 2^k scale below stay in range). NaN passes through.
                    let t = (2.0 * *o).clamp(-40.0, 40.0);
                    let kf = (t * LOG2_E).round();
                    let r = (t - kf * LN2_HI) - kf * LN2_LO;
                    // exp(r) for |r| ≤ ln2/2 via degree-12 Taylor; the
                    // truncation error r¹³/13! is below 2e-16 relative.
                    let mut p = 1.0 / 479_001_600.0;
                    p = p * r + 1.0 / 39_916_800.0;
                    p = p * r + 1.0 / 3_628_800.0;
                    p = p * r + 1.0 / 362_880.0;
                    p = p * r + 1.0 / 40_320.0;
                    p = p * r + 1.0 / 5_040.0;
                    p = p * r + 1.0 / 720.0;
                    p = p * r + 1.0 / 120.0;
                    p = p * r + 1.0 / 24.0;
                    p = p * r + 1.0 / 6.0;
                    p = p * r + 0.5;
                    p = p * r + 1.0;
                    p = p * r + 1.0;
                    // e^t = 2^k · e^r. The 2^k scale avoids a float→int
                    // cast (Rust's saturating cast branches and defeats
                    // vectorization): adding 2^52 + 2^51 parks kf in the
                    // low mantissa bits, and shifting those into the
                    // exponent field yields the biased exponent 1023 + kf
                    // (k ∈ [-58, 58], so it never overflows). NaN input
                    // propagates through r and the polynomial.
                    let u = kf + 6_755_399_441_055_744.0;
                    let e = p
                        * f64::from_bits(
                            (u.to_bits() << 52).wrapping_add(1023u64 << 52),
                        );
                    *o = (e - 1.0) / (e + 1.0);
                }
            }
            _ => {
                for o in out.iter_mut() {
                    *o = self.eval(*o);
                }
            }
        }
    }
}

/// Handle into the tape's interned index-list table. Keeping `Op` free of
/// heap payloads makes it `Copy`, so the backward pass reads each node's op
/// without a per-node clone.
type IdxId = u32;

#[derive(Clone, Copy, Debug)]
#[allow(dead_code)] // constant payloads are kept for Debug output even where
                    // the backward pass recomputes them from node shapes
enum Op {
    Const,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f64),
    AddScalar(Var, f64),
    AddBias(Var, Var),
    Matmul(Var, Var),
    /// `A @ Bᵀ` with `B` stored untransposed.
    MatmulNT(Var, Var),
    /// `Aᵀ @ B` with `A` stored untransposed.
    MatmulTN(Var, Var),
    Transpose(Var),
    Unary(Unary, Var),
    /// Fused `act(x @ w + b)` (`act = None` for a linear layer). One node
    /// replaces the matmul / add-bias / activation triple of an MLP layer.
    Affine { x: Var, w: Var, b: Var, act: Option<Unary> },
    SumAll(Var),
    SumRows(Var),
    BroadcastRows(Var, usize),
    BroadcastScalar(Var, Shape),
    GatherRows(Var, IdxId),
    ScatterAddRows(Var, IdxId, usize),
    MulColVec(Var, Var),
    RowwiseDot(Var, Var),
    Reshape(Var, Shape),
    /// Contiguous column slice `(input, start, width)`.
    SliceCols(Var, usize, usize),
    /// Column embedding into a wider zero matrix `(input, start, total)`.
    PadCols(Var, usize, usize),
    /// Fused activation backward `g ∘ act'(y)`, with the derivative taken
    /// from the saved layer *output* `y`. One node replaces the
    /// derivative-chain / multiply nodes the affine backward used to emit.
    ActBack { g: Var, y: Var, act: Unary },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Stable kernel label for a recorded op (unary ops expand to their
/// nonlinearity's name), used by the step-budget census.
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Const => "const",
        Op::Add(..) => "add",
        Op::Sub(..) => "sub",
        Op::Mul(..) => "mul",
        Op::Neg(..) => "neg",
        Op::Scale(..) => "scale",
        Op::AddScalar(..) => "add_scalar",
        Op::AddBias(..) => "add_bias",
        Op::Matmul(..) => "matmul",
        Op::MatmulNT(..) => "matmul_nt",
        Op::MatmulTN(..) => "matmul_tn",
        Op::Transpose(..) => "transpose",
        Op::Unary(u, _) => match u {
            Unary::Tanh => "tanh",
            Unary::Sigmoid => "sigmoid",
            Unary::Softplus => "softplus",
            Unary::Relu => "relu",
            Unary::Relu6 => "relu6",
            Unary::Exp => "exp",
            Unary::Sqrt => "sqrt",
            Unary::Recip => "recip",
            Unary::Square => "square",
            Unary::OneMinusSquare => "one_minus_square",
            Unary::Step => "step",
            Unary::Clamp01 => "clamp01",
        },
        Op::Affine { .. } => "affine",
        Op::SumAll(..) => "sum_all",
        Op::SumRows(..) => "sum_rows",
        Op::BroadcastRows(..) => "broadcast_rows",
        Op::BroadcastScalar(..) => "broadcast_scalar",
        Op::GatherRows(..) => "gather_rows",
        Op::ScatterAddRows(..) => "scatter_add_rows",
        Op::MulColVec(..) => "mul_col_vec",
        Op::RowwiseDot(..) => "rowwise_dot",
        Op::Reshape(..) => "reshape",
        Op::SliceCols(..) => "slice_cols",
        Op::PadCols(..) => "pad_cols",
        Op::ActBack { .. } => "act_back",
    }
}

/// An append-only tape of eagerly evaluated tensor operations.
///
/// See the module docs for the arena/pooling behaviour of [`Tape::reset`].
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    /// Interned `Rc<[usize]>` lists referenced by gather/scatter ops.
    index_lists: RefCell<Vec<Rc<[usize]>>>,
    /// Recycled value buffers in power-of-two size-class buckets. Buffers
    /// keep their `Arc` wrapper, so reuse skips both the data and the
    /// refcount allocation; the handful of classes makes a linear scan
    /// cheaper than hashing.
    pool: RefCell<Vec<SizeClass>>,
    /// Allocation metering, off by default: when off, the lease path pays
    /// one `Cell` read and nothing else. Observed trainers switch it on so
    /// pool behaviour (hits/misses/bytes) is visible per step and bucket.
    meter: Cell<bool>,
    /// Stats since the last [`Tape::take_alloc_stats`] call.
    meter_window: Cell<TapeAllocStats>,
    /// Stats since metering was enabled.
    meter_total: Cell<TapeAllocStats>,
    /// Bytes currently leased out (leases minus recycles, saturating: the
    /// pool also absorbs caller-donated buffers it never leased).
    live_bytes: Cell<u64>,
}

/// Allocation statistics of a metered [`Tape`] arena. All figures are pure
/// functions of the lease/recycle sequence — no wall clock — so metered and
/// unmetered runs stay bit-identical and the numbers are reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TapeAllocStats {
    /// Buffer leases served from the recycle pool.
    pub pool_hits: u64,
    /// Buffer leases that had to allocate fresh from the global allocator.
    pub pool_misses: u64,
    /// Total leases (`pool_hits + pool_misses`).
    pub leases: u64,
    /// Bytes of fresh capacity allocated by pool misses.
    pub fresh_bytes: u64,
    /// High-water mark of bytes leased out at once.
    pub leased_bytes_hw: u64,
}

/// One recycling bucket: a power-of-two size class and its free buffers.
type SizeClass = (usize, Vec<Arc<Vec<f64>>>);

/// A uniquely-owned buffer leased from the tape's pool. Derefs to its
/// element slice; finish with [`TapeBuf::into_tensor`] to wrap it without
/// another allocation.
struct TapeBuf(Arc<Vec<f64>>);

impl TapeBuf {
    fn into_tensor(self, shape: Shape) -> Tensor {
        Tensor::from_shared(shape, self.0)
    }
}

impl std::ops::Deref for TapeBuf {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl std::ops::DerefMut for TapeBuf {
    fn deref_mut(&mut self) -> &mut [f64] {
        Arc::get_mut(&mut self.0).expect("leased pool buffer is uniquely owned").as_mut_slice()
    }
}

/// Size class a buffer of `len` elements is pooled under.
fn size_class(len: usize) -> usize {
    len.next_power_of_two()
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clear the tape while retaining its allocations: the node list keeps
    /// its capacity and every value buffer not shared outside the tape is
    /// recycled for reuse by subsequent ops. All existing [`Var`] handles
    /// are invalidated.
    pub fn reset(&self) {
        let mut nodes = self.nodes.borrow_mut();
        for node in nodes.drain(..) {
            self.recycle_arc(node.value);
        }
        self.index_lists.borrow_mut().clear();
    }

    /// Return a tensor's buffer (Arc included) to the pool when this tensor
    /// is its sole owner.
    fn recycle_arc(&self, t: Tensor) {
        if t.is_empty() {
            return;
        }
        let class = size_class(t.len());
        if let Some(arc) = t.try_unique_shared() {
            let mut pool = self.pool.borrow_mut();
            match pool.iter_mut().find(|(c, _)| *c == class) {
                Some((_, bucket)) => bucket.push(arc),
                None => pool.push((class, vec![arc])),
            }
            if self.meter.get() {
                let bytes = (class * std::mem::size_of::<f64>()) as u64;
                self.live_bytes.set(self.live_bytes.get().saturating_sub(bytes));
            }
        }
    }

    /// Enable or disable allocation metering. Idempotent; enabling starts
    /// both the window and the cumulative totals from zero.
    pub fn set_alloc_metering(&self, on: bool) {
        if on && !self.meter.get() {
            self.meter_window.set(TapeAllocStats::default());
            self.meter_total.set(TapeAllocStats::default());
            self.live_bytes.set(0);
        }
        self.meter.set(on);
    }

    /// Whether allocation metering is currently enabled.
    pub fn alloc_metering(&self) -> bool {
        self.meter.get()
    }

    /// Cumulative allocation stats since metering was enabled.
    pub fn alloc_stats(&self) -> TapeAllocStats {
        self.meter_total.get()
    }

    /// Allocation stats since the previous `take_alloc_stats` call, and
    /// start a new window (its high-water begins at the bytes still leased).
    pub fn take_alloc_stats(&self) -> TapeAllocStats {
        let window = self.meter_window.get();
        self.meter_window
            .set(TapeAllocStats { leased_bytes_hw: self.live_bytes.get(), ..TapeAllocStats::default() });
        window
    }

    /// Bytes of capacity currently retained by the recycle pool.
    pub fn retained_bytes(&self) -> u64 {
        self.pool
            .borrow()
            .iter()
            .map(|(class, bucket)| (class * bucket.len() * std::mem::size_of::<f64>()) as u64)
            .sum()
    }

    /// Meter one buffer lease (out-of-line so the unmetered lease path
    /// stays a single predictable branch).
    fn meter_lease(&self, class: usize, hit: bool) {
        let bytes = (class * std::mem::size_of::<f64>()) as u64;
        let live = self.live_bytes.get() + bytes;
        self.live_bytes.set(live);
        for cell in [&self.meter_window, &self.meter_total] {
            let mut s = cell.get();
            s.leases += 1;
            if hit {
                s.pool_hits += 1;
            } else {
                s.pool_misses += 1;
                s.fresh_bytes += bytes;
            }
            if live > s.leased_bytes_hw {
                s.leased_bytes_hw = live;
            }
            cell.set(s);
        }
    }

    /// Number of buffers currently available in the recycle pool (test and
    /// diagnostics hook).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.borrow().iter().map(|(_, bucket)| bucket.len()).sum()
    }

    /// Per-kernel node census over a node range: `(kernel name, count)`
    /// pairs sorted by name. Used to build the deterministic step-budget
    /// tables — node counts depend only on graph shape, never on data.
    pub fn op_census(&self, range: std::ops::Range<usize>) -> Vec<(&'static str, usize)> {
        let nodes = self.nodes.borrow();
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for node in &nodes[range] {
            *counts.entry(op_name(&node.op)).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// A buffer of exactly `len` elements with unspecified contents —
    /// callers must overwrite every element.
    fn alloc(&self, len: usize) -> TapeBuf {
        let class = size_class(len);
        let recycled = {
            let mut pool = self.pool.borrow_mut();
            pool.iter_mut().find(|(c, _)| *c == class).and_then(|(_, bucket)| bucket.pop())
        };
        if self.meter.get() {
            self.meter_lease(class, recycled.is_some());
        }
        match recycled {
            Some(mut arc) => {
                let v = Arc::get_mut(&mut arc).expect("pooled buffer is uniquely owned");
                if v.len() != len {
                    v.resize(len, 0.0);
                }
                TapeBuf(arc)
            }
            None => {
                // Reserve the full class so later lengths in the same class
                // resize in place instead of reallocating.
                let mut v = Vec::with_capacity(class);
                v.resize(len, 0.0);
                TapeBuf(Arc::new(v))
            }
        }
    }

    /// A zero-filled buffer of exactly `len` elements.
    fn alloc_zeroed(&self, len: usize) -> TapeBuf {
        let mut buf = self.alloc(len);
        buf.fill(0.0);
        buf
    }

    fn intern_indices(&self, idx: Rc<[usize]>) -> IdxId {
        let mut lists = self.index_lists.borrow_mut();
        lists.push(idx);
        (lists.len() - 1) as IdxId
    }

    fn indices(&self, id: IdxId) -> Rc<[usize]> {
        Rc::clone(&self.index_lists.borrow()[id as usize])
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var { idx: nodes.len() - 1 }
    }

    /// Record a constant (a leaf). Leaves are also the differentiation targets.
    pub fn constant(&self, t: Tensor) -> Var {
        self.push(t, Op::Const)
    }

    /// Record a scalar constant.
    pub fn scalar(&self, v: f64) -> Var {
        self.constant(Tensor::scalar(v))
    }

    /// The current value of a variable. Cheap: tensors share their buffer,
    /// so this is a reference-count bump, not a data copy.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.idx].value.clone()
    }

    /// Run `f` against a borrowed view of the variable's value, without
    /// taking even a shared handle. Do not call tape ops from inside `f`.
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.nodes.borrow()[v.idx].value)
    }

    /// Shape of a variable's value.
    pub fn shape(&self, v: Var) -> Shape {
        self.nodes.borrow()[v.idx].value.shape()
    }

    /// The scalar value of a length-1 variable.
    pub fn item(&self, v: Var) -> f64 {
        self.nodes.borrow()[v.idx].value.item()
    }

    /// True if the variable's value contains NaN or ±∞.
    pub fn has_non_finite(&self, v: Var) -> bool {
        self.nodes.borrow()[v.idx].value.has_non_finite()
    }

    /// Elementwise binary op through a pooled output buffer.
    fn pooled_zip(&self, a: Var, b: Var, op: Op, f: impl Fn(f64, f64) -> f64) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (x, y) = (&nodes[a.idx].value, &nodes[b.idx].value);
            assert_eq!(x.shape(), y.shape(), "shape mismatch {} vs {}", x.shape(), y.shape());
            let mut out = self.alloc(x.len());
            for ((o, &xa), &yb) in out.iter_mut().zip(x.data()).zip(y.data()) {
                *o = f(xa, yb);
            }
            out.into_tensor(x.shape())
        };
        self.push(value, op)
    }

    /// Elementwise unary op through a pooled output buffer.
    fn pooled_map(&self, a: Var, op: Op, f: impl Fn(f64) -> f64) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.idx].value;
            let mut out = self.alloc(x.len());
            for (o, &xa) in out.iter_mut().zip(x.data()) {
                *o = f(xa);
            }
            out.into_tensor(x.shape())
        };
        self.push(value, op)
    }

    fn unary_op(&self, a: Var, f: impl FnOnce(&Tensor) -> Tensor, op: Op) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            f(&nodes[a.idx].value)
        };
        self.push(value, op)
    }

    /// Elementwise sum.
    pub fn add(&self, a: Var, b: Var) -> Var {
        self.pooled_zip(a, b, Op::Add(a, b), |x, y| x + y)
    }

    /// Elementwise difference.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        self.pooled_zip(a, b, Op::Sub(a, b), |x, y| x - y)
    }

    /// Elementwise product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        self.pooled_zip(a, b, Op::Mul(a, b), |x, y| x * y)
    }

    /// Elementwise negation.
    pub fn neg(&self, a: Var) -> Var {
        self.pooled_map(a, Op::Neg(a), |x| -x)
    }

    /// Multiply by a compile-time constant.
    pub fn scale(&self, a: Var, c: f64) -> Var {
        self.pooled_map(a, Op::Scale(a, c), |x| x * c)
    }

    /// Add a compile-time constant to every element.
    pub fn add_scalar(&self, a: Var, c: f64) -> Var {
        self.pooled_map(a, Op::AddScalar(a, c), |x| x + c)
    }

    /// `[n,k] + [k]` bias broadcast.
    pub fn add_bias(&self, m: Var, bias: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (x, b) = (&nodes[m.idx].value, &nodes[bias.idx].value);
            let (r, c) = (x.shape().rows(), x.shape().cols());
            assert_eq!(b.len(), c, "bias length {} vs cols {c}", b.len());
            let mut out = self.alloc(r * c);
            crate::simd::add_bias(x.data(), c, b.data(), &mut out);
            out.into_tensor(x.shape())
        };
        self.push(value, Op::AddBias(m, bias))
    }

    /// Matrix product of two rank-2 variables.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        debug_assert!(matches!(self.shape(a), Shape::D2(..)), "matmul lhs must be 2-D");
        debug_assert!(matches!(self.shape(b), Shape::D2(..)), "matmul rhs must be 2-D");
        let value = {
            let nodes = self.nodes.borrow();
            let (x, y) = (&nodes[a.idx].value, &nodes[b.idx].value);
            let (m, n) = (x.shape().rows(), y.shape().cols());
            let mut out = self.alloc_zeroed(m * n);
            x.matmul_into(y, &mut out);
            out.into_tensor(Shape::D2(m, n))
        };
        self.push(value, Op::Matmul(a, b))
    }

    /// `a @ bᵀ` without materialising the transpose (`[m,k] x [p,k] -> [m,p]`).
    pub fn matmul_nt(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (x, y) = (&nodes[a.idx].value, &nodes[b.idx].value);
            let (m, p) = (x.shape().rows(), y.shape().rows());
            let mut out = self.alloc(m * p);
            x.matmul_nt_into(y, &mut out);
            out.into_tensor(Shape::D2(m, p))
        };
        self.push(value, Op::MatmulNT(a, b))
    }

    /// `aᵀ @ b` without materialising the transpose (`[k,m] x [k,n] -> [m,n]`).
    pub fn matmul_tn(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (x, y) = (&nodes[a.idx].value, &nodes[b.idx].value);
            let (m, n) = (x.shape().cols(), y.shape().cols());
            let mut out = self.alloc_zeroed(m * n);
            x.matmul_tn_into(y, &mut out);
            out.into_tensor(Shape::D2(m, n))
        };
        self.push(value, Op::MatmulTN(a, b))
    }

    /// Matrix transpose of a rank-2 variable.
    pub fn transpose(&self, a: Var) -> Var {
        self.unary_op(a, |x| x.transpose(), Op::Transpose(a))
    }

    /// Fused MLP layer `act(x @ w + b)` — or `x @ w + b` when `act` is
    /// `None` — recorded as a single node. The forward runs matmul, bias
    /// add, and activation in one pooled buffer; the backward uses the
    /// transposed-matmul kernels and the activation derivative expressed
    /// from the layer *output*, so the whole layer costs one node instead
    /// of three and its gradient stays differentiable (double backward).
    pub fn affine(&self, x: Var, w: Var, b: Var, act: Option<Unary>) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (xv, wv, bv) =
                (&nodes[x.idx].value, &nodes[w.idx].value, &nodes[b.idx].value);
            let (m, n) = (xv.shape().rows(), wv.shape().cols());
            assert_eq!(bv.len(), n, "affine bias length {} vs cols {n}", bv.len());
            let mut out = self.alloc_zeroed(m * n);
            xv.matmul_into(wv, &mut out);
            crate::simd::add_bias_inplace(&mut out, n, bv.data());
            if let Some(k) = act {
                k.eval_slice(&mut out);
            }
            out.into_tensor(Shape::D2(m, n))
        };
        self.push(value, Op::Affine { x, w, b, act })
    }

    /// Fused population sweep over one shared `[m, 1]` input: `G` affine
    /// layers `act(x·wᵍ + bᵍ)` computed in a single kernel pass.
    ///
    /// Semantically this IS `G` calls to [`Tape::affine`] — each returned
    /// node is an ordinary `Op::Affine` carrying that genome's own
    /// operands, so gradients and double-backward follow the per-genome
    /// path unchanged. Only the forward values come from one fused sweep:
    /// the shared input element is loaded once per row and every genome's
    /// `[m, nᵍ]` block is written directly. All weights must have one row
    /// (`k = 1`, the descriptor first layer), where each output element is
    /// the single product `act((0 + x·w) + b)` — spelled exactly like the
    /// zero-initialised accumulator of the general kernel, so the fused
    /// values are bit-identical to the per-genome ones.
    pub fn affine_population(
        &self,
        x: Var,
        layers: &[(Var, Var)],
        act: Option<Unary>,
    ) -> Vec<Var> {
        // Cheap Arc clones so no node borrow is held across `alloc`/`push`.
        let xv = self.nodes.borrow()[x.idx].value.clone();
        assert_eq!(xv.shape().cols(), 1, "affine_population input must be [m, 1]");
        let m = xv.shape().rows();
        let wb: Vec<(Tensor, Tensor)> = {
            let nodes = self.nodes.borrow();
            layers
                .iter()
                .map(|&(w, b)| (nodes[w.idx].value.clone(), nodes[b.idx].value.clone()))
                .collect()
        };
        for (w, b) in &wb {
            assert_eq!(w.shape().rows(), 1, "affine_population weights must be [1, n]");
            assert_eq!(b.len(), w.shape().cols(), "affine_population bias length");
        }
        let xd = xv.data();
        let mut bufs: Vec<_> = wb.iter().map(|(w, _)| self.alloc(m * w.shape().cols())).collect();
        for (p, &xp) in xd.iter().enumerate() {
            for ((w, b), buf) in wb.iter().zip(bufs.iter_mut()) {
                let n = w.shape().cols();
                let (wd, bd) = (w.data(), b.data());
                let orow = &mut buf[p * n..(p + 1) * n];
                for j in 0..n {
                    // `0.0 + x·w` mirrors the general kernel's accumulator
                    // exactly (it differs from plain `x·w` when the product
                    // is a negative zero).
                    orow[j] = (0.0 + xp * wd[j]) + bd[j];
                }
            }
        }
        if let Some(k) = act {
            for buf in &mut bufs {
                k.eval_slice(buf);
            }
        }
        wb.iter()
            .zip(bufs)
            .zip(layers)
            .map(|(((w, _), buf), &(wv, bv))| {
                let n = w.shape().cols();
                self.push(buf.into_tensor(Shape::D2(m, n)), Op::Affine { x, w: wv, b: bv, act })
            })
            .collect()
    }

    /// Apply an elementwise nonlinearity.
    pub fn unary(&self, k: Unary, a: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.idx].value;
            let mut out = self.alloc(x.len());
            out.copy_from_slice(x.data());
            k.eval_slice(&mut out);
            out.into_tensor(x.shape())
        };
        self.push(value, Op::Unary(k, a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.unary(Unary::Tanh, a)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        self.unary(Unary::Sigmoid, a)
    }

    /// Softplus `ln(1+e^x)`.
    pub fn softplus(&self, a: Var) -> Var {
        self.unary(Unary::Softplus, a)
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        self.unary(Unary::Relu, a)
    }

    /// ReLU clipped at 6.
    pub fn relu6(&self, a: Var) -> Var {
        self.unary(Unary::Relu6, a)
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        self.unary(Unary::Exp, a)
    }

    /// Elementwise square root.
    pub fn sqrt(&self, a: Var) -> Var {
        self.unary(Unary::Sqrt, a)
    }

    /// Elementwise reciprocal.
    pub fn recip(&self, a: Var) -> Var {
        self.unary(Unary::Recip, a)
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        self.unary(Unary::Square, a)
    }

    /// Heaviside step (derivative of `relu`).
    pub fn step(&self, a: Var) -> Var {
        self.unary(Unary::Step, a)
    }

    /// Clamp into the unit interval.
    pub fn clamp01(&self, a: Var) -> Var {
        self.unary(Unary::Clamp01, a)
    }

    /// Sum every element into a scalar `[1]`.
    pub fn sum_all(&self, a: Var) -> Var {
        self.unary_op(
            a,
            |x| {
                let mut out = self.alloc(1);
                out[0] = x.sum();
                out.into_tensor(Shape::D1(1))
            },
            Op::SumAll(a),
        )
    }

    /// Column sums: `[n,k] -> [k]`.
    pub fn sum_rows(&self, a: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.idx].value;
            let c = x.shape().cols();
            let mut out = self.alloc_zeroed(c);
            crate::simd::sum_rows(x.data(), c, &mut out);
            out.into_tensor(Shape::D1(c))
        };
        self.push(value, Op::SumRows(a))
    }

    /// Replicate a `[k]` vector into `[n,k]`.
    pub fn broadcast_rows(&self, a: Var, n: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.idx].value;
            let k = x.len();
            let mut out = self.alloc(n * k);
            for row in out.chunks_exact_mut(k.max(1)) {
                row.copy_from_slice(x.data());
            }
            out.into_tensor(Shape::D2(n, k))
        };
        self.push(value, Op::BroadcastRows(a, n))
    }

    /// Replicate a scalar into an arbitrary shape.
    pub fn broadcast_scalar(&self, a: Var, shape: Shape) -> Var {
        let value = {
            let v = self.nodes.borrow()[a.idx].value.item();
            let mut out = self.alloc(shape.len());
            out.fill(v);
            out.into_tensor(shape)
        };
        self.push(value, Op::BroadcastScalar(a, shape))
    }

    /// Gather rows by index. Out-of-range indices panic via the kernel's
    /// slice bounds checks.
    pub fn gather_rows(&self, a: Var, idx: Rc<[usize]>) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.idx].value;
            let c = x.shape().cols();
            let mut out = self.alloc(idx.len() * c);
            crate::simd::gather_rows(x.data(), c, &idx, &mut out);
            let shape = match x.shape() {
                Shape::D1(_) => Shape::D1(idx.len()),
                Shape::D2(..) => Shape::D2(idx.len(), c),
            };
            out.into_tensor(shape)
        };
        let id = self.intern_indices(idx);
        self.push(value, Op::GatherRows(a, id))
    }

    /// Scatter-add rows into a zeroed tensor with `n` rows. Out-of-range
    /// indices panic via the kernel's slice bounds checks.
    pub fn scatter_add_rows(&self, a: Var, idx: Rc<[usize]>, n: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.idx].value;
            let c = x.shape().cols();
            assert_eq!(x.shape().rows(), idx.len(), "scatter_add_rows index count");
            let mut out = self.alloc_zeroed(n * c);
            crate::simd::scatter_add_rows(x.data(), c, &idx, &mut out);
            let shape = match x.shape() {
                Shape::D1(_) => Shape::D1(n),
                Shape::D2(..) => Shape::D2(n, c),
            };
            out.into_tensor(shape)
        };
        let id = self.intern_indices(idx);
        self.push(value, Op::ScatterAddRows(a, id, n))
    }

    /// Copy the contiguous column range `[start, start+width)` of a matrix
    /// into a new `[r, width]` tensor. With [`Tape::pad_cols`] this closes
    /// column-blocked computations (e.g. a population of networks fused
    /// into one wide layer) under double backward.
    pub fn slice_cols(&self, a: Var, start: usize, width: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.idx].value;
            let (r, c) = (x.shape().rows(), x.shape().cols());
            assert!(start + width <= c, "column slice {start}+{width} exceeds width {c}");
            let mut out = self.alloc(r * width);
            for (orow, xrow) in
                out.chunks_exact_mut(width.max(1)).zip(x.data().chunks_exact(c.max(1)))
            {
                orow.copy_from_slice(&xrow[start..start + width]);
            }
            out.into_tensor(Shape::D2(r, width))
        };
        self.push(value, Op::SliceCols(a, start, width))
    }

    /// Embed a matrix's columns into a wider zero matrix starting at column
    /// `start` — the adjoint of [`Tape::slice_cols`].
    pub fn pad_cols(&self, a: Var, start: usize, total: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let x = &nodes[a.idx].value;
            let (r, w) = (x.shape().rows(), x.shape().cols());
            assert!(start + w <= total, "column pad {start}+{w} exceeds width {total}");
            let mut out = self.alloc_zeroed(r * total);
            for (orow, xrow) in
                out.chunks_exact_mut(total.max(1)).zip(x.data().chunks_exact(w.max(1)))
            {
                orow[start..start + w].copy_from_slice(xrow);
            }
            out.into_tensor(Shape::D2(r, total))
        };
        self.push(value, Op::PadCols(a, start, total))
    }

    /// Scale row `i` of `m` by `v[i]`.
    pub fn mul_col_vec(&self, m: Var, v: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let (x, s) = (&nodes[m.idx].value, &nodes[v.idx].value);
            let (r, c) = (x.shape().rows(), x.shape().cols());
            assert_eq!(s.len(), r, "mul_col_vec length mismatch");
            let mut out = self.alloc(r * c);
            crate::simd::row_scale(x.data(), c, s.data(), &mut out);
            out.into_tensor(x.shape())
        };
        self.push(value, Op::MulColVec(m, v))
    }

    /// Row-wise dot product, producing `[n]`.
    pub fn rowwise_dot(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            nodes[a.idx].value.rowwise_dot(&nodes[b.idx].value)
        };
        self.push(value, Op::RowwiseDot(a, b))
    }

    /// Reinterpret with a new shape of equal element count. Shares the
    /// underlying buffer — no copy.
    pub fn reshape(&self, a: Var, shape: Shape) -> Var {
        self.unary_op(a, |x| x.reshape(shape), Op::Reshape(a, shape))
    }

    /// A zero constant with the same shape as `a`.
    pub fn zeros_like(&self, a: Var) -> Var {
        let shape = self.shape(a);
        let value = self.alloc_zeroed(shape.len()).into_tensor(shape);
        self.constant(value)
    }

    /// Derivative `f'(x)` of a unary op, built from taped primitives so that
    /// it is itself differentiable. `y` is the already-computed `f(x)`.
    fn unary_derivative(&self, k: Unary, x: Var, y: Var) -> Var {
        match k {
            // tanh' = 1 - tanh², one fused node instead of a 3-op chain.
            Unary::Tanh => self.unary(Unary::OneMinusSquare, y),
            // σ' = σ(1-σ).
            Unary::Sigmoid => self.mul(y, self.add_scalar(self.scale(y, -1.0), 1.0)),
            // softplus' = σ.
            Unary::Softplus => self.sigmoid(x),
            Unary::Relu => self.step(x),
            // relu6' = 1 on (0,6): step(x)·step(6-x).
            Unary::Relu6 => {
                let six_minus = self.add_scalar(self.scale(x, -1.0), 6.0);
                self.mul(self.step(x), self.step(six_minus))
            }
            Unary::Exp => y,
            // sqrt' = 1/(2√x).
            Unary::Sqrt => self.scale(self.recip(y), 0.5),
            // (1/x)' = -1/x² = -y².
            Unary::Recip => self.scale(self.square(y), -1.0),
            Unary::Square => self.scale(x, 2.0),
            Unary::OneMinusSquare => self.scale(x, -2.0),
            Unary::Step => self.zeros_like(x),
            // clamp01' = 1 on (0,1): step(x)·step(1-x).
            Unary::Clamp01 => {
                let one_minus = self.add_scalar(self.scale(x, -1.0), 1.0);
                self.mul(self.step(x), self.step(one_minus))
            }
        }
    }

    /// Activation derivative expressed purely from the layer *output* `y`,
    /// for the fused affine backward (the pre-activation is never stored).
    /// Every supported activation admits such a form:
    /// tanh' = 1-y², σ' = y(1-y), softplus' = 1-e^{-y} (= σ of the input),
    /// relu' = step(y), relu6' = step(y)·step(6-y).
    /// Fused `g ∘ act'(y)` from a saved activation output: the taped
    /// counterpart of [`Tape::val_affine_gm`], evaluated in one pass and
    /// recorded as a single [`Op::ActBack`] node. Bit-identical to the
    /// decomposed `mul(g, activation_derivative_from_output(...))` chain —
    /// every per-element rounding happens in the same order.
    fn act_back(&self, g: Var, y: Var, act: Unary) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            self.val_affine_gm(act, &nodes[g.idx].value, &nodes[y.idx].value)
        };
        self.push(value, Op::ActBack { g, y, act })
    }

    fn activation_derivative_from_output(&self, k: Unary, y: Var) -> Var {
        match k {
            Unary::Tanh => self.unary(Unary::OneMinusSquare, y),
            Unary::Sigmoid => self.mul(y, self.add_scalar(self.scale(y, -1.0), 1.0)),
            Unary::Softplus => self.add_scalar(self.neg(self.exp(self.neg(y))), 1.0),
            // y = max(x,0): x > 0 ⟺ y > 0, and the derivative at 0 is 0
            // either way, matching `unary_derivative`'s step convention.
            Unary::Relu => self.step(y),
            // y = clamp(x,0,6): interior ⟺ 0 < y < 6.
            Unary::Relu6 => {
                let six_minus = self.add_scalar(self.scale(y, -1.0), 6.0);
                self.mul(self.step(y), self.step(six_minus))
            }
            _ => panic!("affine fusion only supports MLP activations, got {k:?}"),
        }
    }

    /// Return a tensor's buffer to the recycle pool if nothing else holds it.
    fn recycle(&self, t: Tensor) {
        self.recycle_arc(t);
    }

    /// Elementwise map into a pooled buffer (value-level, no node).
    fn val_map(&self, x: &Tensor, f: impl Fn(f64) -> f64) -> Tensor {
        let mut out = self.alloc(x.len());
        for (o, &v) in out.iter_mut().zip(x.data()) {
            *o = f(v);
        }
        out.into_tensor(x.shape())
    }

    /// Elementwise zip into a pooled buffer (value-level, no node).
    fn val_zip(&self, x: &Tensor, y: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        debug_assert_eq!(x.shape().len(), y.shape().len());
        let mut out = self.alloc(x.len());
        for ((o, &a), &b) in out.iter_mut().zip(x.data()).zip(y.data()) {
            *o = f(a, b);
        }
        out.into_tensor(x.shape())
    }

    /// Column sums into a pooled buffer (value-level, no node).
    fn val_sum_rows(&self, x: &Tensor) -> Tensor {
        let c = x.shape().cols();
        let mut out = self.alloc_zeroed(c);
        crate::simd::sum_rows(x.data(), c, &mut out);
        out.into_tensor(Shape::D1(c))
    }

    /// Row-scaled copy into a pooled buffer (value-level, no node).
    fn val_mul_col_vec(&self, x: &Tensor, s: &Tensor) -> Tensor {
        let (r, c) = (x.shape().rows(), x.shape().cols());
        debug_assert_eq!(s.len(), r);
        let mut out = self.alloc(r * c);
        crate::simd::row_scale(x.data(), c, s.data(), &mut out);
        out.into_tensor(x.shape())
    }

    /// `g ∘ f'(x)` in one pooled pass, arithmetic mirroring
    /// [`Tape::unary_derivative`] exactly (bit-identical to the taped chain).
    fn val_unary_backward(&self, k: Unary, g: &Tensor, xv: &Tensor, yv: &Tensor) -> Option<Tensor> {
        if matches!(k, Unary::Step) {
            return None; // derivative is identically zero
        }
        let mut out = self.alloc(xv.len());
        // One fused pass per variant: the activation match is hoisted out
        // of the element loop so each arm is a straight-line loop the
        // autovectorizer handles. Arithmetic per element is unchanged.
        macro_rules! sweep {
            (|$x:ident, $y:ident| $d:expr) => {{
                for (((o, &gv), &$x, ), &$y) in
                    out.iter_mut().zip(g.data()).zip(xv.data()).zip(yv.data())
                {
                    let d = $d;
                    *o = gv * d;
                }
            }};
        }
        match k {
            Unary::Tanh => sweep!(|_x, y| -(y * y) + 1.0),
            Unary::Sigmoid => sweep!(|_x, y| y * (-y + 1.0)),
            Unary::Softplus => sweep!(|x, _y| Unary::Sigmoid.eval(x)),
            Unary::Relu => sweep!(|x, _y| if x > 0.0 { 1.0 } else { 0.0 }),
            Unary::Relu6 => sweep!(|x, _y| {
                let s1 = if x > 0.0 { 1.0 } else { 0.0 };
                let s2 = if -x + 6.0 > 0.0 { 1.0 } else { 0.0 };
                s1 * s2
            }),
            Unary::Exp => sweep!(|_x, y| y),
            Unary::Sqrt => sweep!(|_x, y| (1.0 / y) * 0.5),
            Unary::Recip => sweep!(|_x, y| -(y * y)),
            Unary::Square => sweep!(|x, _y| x * 2.0),
            Unary::OneMinusSquare => sweep!(|x, _y| x * (-2.0)),
            Unary::Clamp01 => sweep!(|x, _y| {
                let s1 = if x > 0.0 { 1.0 } else { 0.0 };
                let s2 = if -x + 1.0 > 0.0 { 1.0 } else { 0.0 };
                s1 * s2
            }),
            Unary::Step => unreachable!(),
        }
        Some(out.into_tensor(xv.shape()))
    }

    /// `g ∘ act'(y)` from the fused-affine output in one pooled pass,
    /// mirroring [`Tape::activation_derivative_from_output`] exactly.
    fn val_affine_gm(&self, k: Unary, g: &Tensor, yv: &Tensor) -> Tensor {
        let mut out = self.alloc(yv.len());
        // Variant match hoisted out of the element loop (see
        // `val_unary_backward`); per-element arithmetic unchanged.
        macro_rules! sweep {
            (|$y:ident| $d:expr) => {{
                for ((o, &gv), &$y) in out.iter_mut().zip(g.data()).zip(yv.data()) {
                    let d = $d;
                    *o = gv * d;
                }
            }};
        }
        match k {
            Unary::Tanh => sweep!(|y| -(y * y) + 1.0),
            Unary::Sigmoid => sweep!(|y| y * (-y + 1.0)),
            Unary::Softplus => sweep!(|y| (-((-y).exp())) + 1.0),
            Unary::Relu => sweep!(|y| if y > 0.0 { 1.0 } else { 0.0 }),
            Unary::Relu6 => sweep!(|y| {
                let s1 = if y > 0.0 { 1.0 } else { 0.0 };
                let s2 = if -y + 6.0 > 0.0 { 1.0 } else { 0.0 };
                s1 * s2
            }),
            _ => panic!("affine fusion only supports MLP activations, got {k:?}"),
        }
        out.into_tensor(yv.shape())
    }

    /// y-adjoint of [`Op::ActBack`]: `(G ∘ g) ∘ d(act')/dy` evaluated from
    /// the saved output, with every intermediate rounded in exactly the
    /// order the decomposed derivative chain rounded it (see the taped
    /// `ActBack` arm in [`Tape::grad`]). Returns `None` for step-derivative
    /// activations, whose second derivative is zero almost everywhere —
    /// matching the decomposed chain, which contributed nothing.
    fn val_act_back_y(
        &self,
        k: Unary,
        g: &Tensor,
        ggv: &Tensor,
        yv: &Tensor,
    ) -> Option<Tensor> {
        if matches!(k, Unary::Relu | Unary::Relu6) {
            return None;
        }
        let mut out = self.alloc(yv.len());
        macro_rules! sweep {
            (|$t:ident, $y:ident| $e:expr) => {{
                for (((o, &gv), &hv), &$y) in
                    out.iter_mut().zip(g.data()).zip(ggv.data()).zip(yv.data())
                {
                    let $t = gv * hv;
                    *o = $e;
                }
            }};
        }
        match k {
            Unary::Tanh => sweep!(|t, y| t * (y * -2.0)),
            Unary::Sigmoid => sweep!(|t, y| (t * ((-y) + 1.0)) + (-(t * y))),
            Unary::Softplus => sweep!(|t, y| -((-t) * (-y).exp())),
            _ => panic!("affine fusion only supports MLP activations, got {k:?}"),
        }
        Some(out.into_tensor(yv.shape()))
    }

    /// Nodes from which at least one `wrt` target is reachable by walking
    /// op inputs. Both backward passes only propagate adjoints into useful
    /// nodes: a gradient of anything else would be discarded anyway, and
    /// skipping it never changes a kept gradient, because a useful node
    /// only ever receives contributions from useful consumers. In the
    /// force/double-backward pattern this skips every weight-gradient
    /// matmul of the inner `grad(energy, [z, s])` pass.
    fn useful_mask(nodes: &[Node], limit: usize, wrt: &[Var]) -> Vec<bool> {
        let mut useful = vec![false; limit];
        for v in wrt {
            if v.idx < limit {
                useful[v.idx] = true;
            }
        }
        for i in 0..limit {
            if useful[i] {
                continue;
            }
            useful[i] = match nodes[i].op {
                Op::Const => false,
                Op::Add(a, b)
                | Op::Sub(a, b)
                | Op::Mul(a, b)
                | Op::AddBias(a, b)
                | Op::Matmul(a, b)
                | Op::MatmulNT(a, b)
                | Op::MatmulTN(a, b)
                | Op::MulColVec(a, b)
                | Op::RowwiseDot(a, b) => useful[a.idx] || useful[b.idx],
                Op::Affine { x, w, b, .. } => {
                    useful[x.idx] || useful[w.idx] || useful[b.idx]
                }
                Op::ActBack { g, y, .. } => useful[g.idx] || useful[y.idx],
                Op::Neg(a)
                | Op::Scale(a, _)
                | Op::AddScalar(a, _)
                | Op::Transpose(a)
                | Op::Unary(_, a)
                | Op::SumAll(a)
                | Op::SumRows(a)
                | Op::BroadcastRows(a, _)
                | Op::BroadcastScalar(a, _)
                | Op::GatherRows(a, _)
                | Op::ScatterAddRows(a, _, _)
                | Op::Reshape(a, _)
                | Op::SliceCols(a, _, _)
                | Op::PadCols(a, _, _) => useful[a.idx],
            };
        }
        useful
    }

    /// First-order reverse-mode gradients of `sum(y)` as plain tensors.
    ///
    /// Computes the same values as [`Tape::grad`] (bit-for-bit: every
    /// adjoint uses the same kernels in the same order) but records
    /// **nothing** on the tape: adjoints live in pooled scratch buffers,
    /// accumulation happens in place, and activation-derivative chains run
    /// as single fused passes. This is the fast path for an optimiser-bound
    /// caller that needs gradient *values* only — when the gradient must be
    /// differentiated again (e.g. force construction), use [`Tape::grad`].
    pub fn grad_values(&self, y: Var, wrt: &[Var]) -> Vec<Tensor> {
        let nodes = self.nodes.borrow();
        let limit = y.idx + 1;
        let mut is_target = vec![false; limit];
        for v in wrt {
            assert!(v.idx < limit, "grad target created after output variable");
            is_target[v.idx] = true;
        }
        let useful = Tape::useful_mask(&nodes, limit, wrt);
        let mut adjoint: Vec<Option<Tensor>> = vec![None; limit];
        adjoint[y.idx] = Some(Tensor::ones(nodes[y.idx].value.shape()));

        for i in (0..limit).rev() {
            let Some(g) = adjoint[i].take() else { continue };
            let op = nodes[i].op;
            // In-place accumulation: `existing[j] += contribution[j]` is the
            // same arithmetic as the taped `add(existing, contribution)`.
            let acc = |slot: Var, contribution: Tensor, adjoint: &mut Vec<Option<Tensor>>| {
                match &mut adjoint[slot.idx] {
                    entry @ None => *entry = Some(contribution),
                    Some(existing) => {
                        let out = existing.data_mut();
                        for (o, &c) in out.iter_mut().zip(contribution.data()) {
                            *o += c;
                        }
                        self.recycle(contribution);
                    }
                }
            };
            match op {
                Op::Const => {}
                Op::Add(a, b) => {
                    if useful[a.idx] {
                        acc(a, g.clone(), &mut adjoint);
                    }
                    if useful[b.idx] {
                        acc(b, g.clone(), &mut adjoint);
                    }
                }
                Op::Sub(a, b) => {
                    if useful[a.idx] {
                        acc(a, g.clone(), &mut adjoint);
                    }
                    if useful[b.idx] {
                        let ng = self.val_map(&g, |v| -v);
                        acc(b, ng, &mut adjoint);
                    }
                }
                Op::Mul(a, b) => {
                    if useful[a.idx] {
                        let ga = self.val_zip(&g, &nodes[b.idx].value, |x, y| x * y);
                        acc(a, ga, &mut adjoint);
                    }
                    if useful[b.idx] {
                        let gb = self.val_zip(&g, &nodes[a.idx].value, |x, y| x * y);
                        acc(b, gb, &mut adjoint);
                    }
                }
                Op::Neg(a) => {
                    if useful[a.idx] {
                        let ng = self.val_map(&g, |v| -v);
                        acc(a, ng, &mut adjoint);
                    }
                }
                Op::Scale(a, c) => {
                    if useful[a.idx] {
                        let gs = self.val_map(&g, |v| v * c);
                        acc(a, gs, &mut adjoint);
                    }
                }
                Op::AddScalar(a, _) => {
                    if useful[a.idx] {
                        acc(a, g.clone(), &mut adjoint);
                    }
                }
                Op::AddBias(m, bias) => {
                    if useful[m.idx] {
                        acc(m, g.clone(), &mut adjoint);
                    }
                    if useful[bias.idx] {
                        let gb = self.val_sum_rows(&g);
                        acc(bias, gb, &mut adjoint);
                    }
                }
                Op::Matmul(a, b) => {
                    let (av, bv) = (&nodes[a.idx].value, &nodes[b.idx].value);
                    if useful[a.idx] {
                        let mut ga = self.alloc(g.shape().rows() * bv.shape().rows());
                        g.matmul_nt_into(bv, &mut ga);
                        acc(a, ga.into_tensor(Shape::D2(g.shape().rows(), bv.shape().rows())), &mut adjoint);
                    }
                    if useful[b.idx] {
                        let mut gb = self.alloc_zeroed(av.shape().cols() * g.shape().cols());
                        av.matmul_tn_into(&g, &mut gb);
                        acc(b, gb.into_tensor(Shape::D2(av.shape().cols(), g.shape().cols())), &mut adjoint);
                    }
                }
                Op::MatmulNT(a, b) => {
                    let (av, bv) = (&nodes[a.idx].value, &nodes[b.idx].value);
                    if useful[a.idx] {
                        let mut ga = self.alloc_zeroed(g.shape().rows() * bv.shape().cols());
                        g.matmul_into(bv, &mut ga);
                        acc(a, ga.into_tensor(Shape::D2(g.shape().rows(), bv.shape().cols())), &mut adjoint);
                    }
                    if useful[b.idx] {
                        let mut gb = self.alloc_zeroed(g.shape().cols() * av.shape().cols());
                        g.matmul_tn_into(av, &mut gb);
                        acc(b, gb.into_tensor(Shape::D2(g.shape().cols(), av.shape().cols())), &mut adjoint);
                    }
                }
                Op::MatmulTN(a, b) => {
                    let (av, bv) = (&nodes[a.idx].value, &nodes[b.idx].value);
                    if useful[a.idx] {
                        let mut ga = self.alloc(bv.shape().rows() * g.shape().rows());
                        bv.matmul_nt_into(&g, &mut ga);
                        acc(a, ga.into_tensor(Shape::D2(bv.shape().rows(), g.shape().rows())), &mut adjoint);
                    }
                    if useful[b.idx] {
                        let mut gb = self.alloc_zeroed(av.shape().rows() * g.shape().cols());
                        av.matmul_into(&g, &mut gb);
                        acc(b, gb.into_tensor(Shape::D2(av.shape().rows(), g.shape().cols())), &mut adjoint);
                    }
                }
                Op::Transpose(a) => {
                    if useful[a.idx] {
                        let gt = g.transpose();
                        acc(a, gt, &mut adjoint);
                    }
                }
                Op::Unary(k, x) => {
                    if useful[x.idx] {
                        if let Some(gx) =
                            self.val_unary_backward(k, &g, &nodes[x.idx].value, &nodes[i].value)
                        {
                            acc(x, gx, &mut adjoint);
                        }
                    }
                }
                Op::Affine { x, w, b, act } => {
                    if useful[x.idx] || useful[w.idx] || useful[b.idx] {
                        let gm = match act {
                            Some(k) => self.val_affine_gm(k, &g, &nodes[i].value),
                            None => g.clone(),
                        };
                        let (xv, wv) = (&nodes[x.idx].value, &nodes[w.idx].value);
                        if useful[x.idx] {
                            let mut gx = self.alloc(gm.shape().rows() * wv.shape().rows());
                            gm.matmul_nt_into(wv, &mut gx);
                            acc(x, gx.into_tensor(Shape::D2(gm.shape().rows(), wv.shape().rows())), &mut adjoint);
                        }
                        if useful[w.idx] {
                            let mut gw = self.alloc_zeroed(xv.shape().cols() * gm.shape().cols());
                            xv.matmul_tn_into(&gm, &mut gw);
                            acc(w, gw.into_tensor(Shape::D2(xv.shape().cols(), gm.shape().cols())), &mut adjoint);
                        }
                        if useful[b.idx] {
                            let gb = self.val_sum_rows(&gm);
                            acc(b, gb, &mut adjoint);
                        }
                        self.recycle(gm);
                    }
                }
                Op::ActBack { g: gg, y, act } => {
                    let yv = &nodes[y.idx].value;
                    if useful[gg.idx] {
                        let c = self.val_affine_gm(act, &g, yv);
                        acc(gg, c, &mut adjoint);
                    }
                    if useful[y.idx] {
                        let ggv = &nodes[gg.idx].value;
                        if let Some(c) = self.val_act_back_y(act, &g, ggv, yv) {
                            acc(y, c, &mut adjoint);
                        }
                    }
                }
                Op::SliceCols(a, start, _) => {
                    if useful[a.idx] {
                        let ashape = nodes[a.idx].value.shape();
                        let (r, c) = (ashape.rows(), ashape.cols());
                        let w = g.shape().cols();
                        let mut out = self.alloc_zeroed(r * c);
                        for (orow, grow) in
                            out.chunks_exact_mut(c.max(1)).zip(g.data().chunks_exact(w.max(1)))
                        {
                            orow[start..start + w].copy_from_slice(grow);
                        }
                        acc(a, out.into_tensor(Shape::D2(r, c)), &mut adjoint);
                    }
                }
                Op::PadCols(a, start, total) => {
                    if useful[a.idx] {
                        let ashape = nodes[a.idx].value.shape();
                        let (r, w) = (ashape.rows(), ashape.cols());
                        let mut out = self.alloc(r * w);
                        for (orow, grow) in
                            out.chunks_exact_mut(w.max(1)).zip(g.data().chunks_exact(total.max(1)))
                        {
                            orow.copy_from_slice(&grow[start..start + w]);
                        }
                        acc(a, out.into_tensor(Shape::D2(r, w)), &mut adjoint);
                    }
                }
                Op::SumAll(a) => {
                    if useful[a.idx] {
                        let shape = nodes[a.idx].value.shape();
                        let mut out = self.alloc(shape.len());
                        out.fill(g.item());
                        acc(a, out.into_tensor(shape), &mut adjoint);
                    }
                }
                Op::SumRows(a) => {
                    if useful[a.idx] {
                        let n = nodes[a.idx].value.shape().rows();
                        let k = g.len();
                        let mut out = self.alloc(n * k);
                        for row in out.chunks_exact_mut(k.max(1)) {
                            row.copy_from_slice(g.data());
                        }
                        acc(a, out.into_tensor(Shape::D2(n, k)), &mut adjoint);
                    }
                }
                Op::BroadcastRows(a, _) => {
                    if useful[a.idx] {
                        let gs = self.val_sum_rows(&g);
                        acc(a, gs, &mut adjoint);
                    }
                }
                Op::BroadcastScalar(a, _) => {
                    if useful[a.idx] {
                        let mut gs = self.alloc(1);
                        gs[0] = g.sum();
                        acc(a, gs.into_tensor(Shape::D1(1)), &mut adjoint);
                    }
                }
                Op::GatherRows(a, id) => {
                    if useful[a.idx] {
                        let ashape = nodes[a.idx].value.shape();
                        let c = ashape.cols();
                        let idx = self.indices(id);
                        let mut out = self.alloc_zeroed(ashape.len());
                        crate::simd::scatter_add_rows(g.data(), c, &idx, &mut out);
                        acc(a, out.into_tensor(ashape), &mut adjoint);
                    }
                }
                Op::ScatterAddRows(a, id, _) => {
                    if useful[a.idx] {
                        let ashape = nodes[a.idx].value.shape();
                        let c = ashape.cols();
                        let idx = self.indices(id);
                        let mut out = self.alloc(ashape.len());
                        crate::simd::gather_rows(g.data(), c, &idx, &mut out);
                        acc(a, out.into_tensor(ashape), &mut adjoint);
                    }
                }
                Op::MulColVec(m, v) => {
                    if useful[m.idx] {
                        let gm = self.val_mul_col_vec(&g, &nodes[v.idx].value);
                        acc(m, gm, &mut adjoint);
                    }
                    if useful[v.idx] {
                        let mv = &nodes[m.idx].value;
                        let (r, c) = (mv.shape().rows(), mv.shape().cols());
                        let mut gv = self.alloc(r);
                        crate::simd::rowwise_dot(g.data(), mv.data(), c, &mut gv);
                        acc(v, gv.into_tensor(Shape::D1(r)), &mut adjoint);
                    }
                }
                Op::RowwiseDot(a, b) => {
                    if useful[a.idx] {
                        let ga = self.val_mul_col_vec(&nodes[b.idx].value, &g);
                        acc(a, ga, &mut adjoint);
                    }
                    if useful[b.idx] {
                        let gb = self.val_mul_col_vec(&nodes[a.idx].value, &g);
                        acc(b, gb, &mut adjoint);
                    }
                }
                Op::Reshape(a, _) => {
                    if useful[a.idx] {
                        let gr = g.reshape(nodes[a.idx].value.shape());
                        acc(a, gr, &mut adjoint);
                    }
                }
            }
            if is_target[i] {
                adjoint[i] = Some(g);
            } else {
                self.recycle(g);
            }
        }

        let out: Vec<Tensor> = wrt
            .iter()
            .map(|v| match &adjoint[v.idx] {
                Some(t) => t.clone(),
                None => self
                    .alloc_zeroed(nodes[v.idx].value.len())
                    .into_tensor(nodes[v.idx].value.shape()),
            })
            .collect();
        for slot in adjoint.into_iter().flatten() {
            self.recycle(slot);
        }
        out
    }

    /// Reverse-mode gradients of `sum(y)` with respect to each entry in `wrt`.
    ///
    /// The returned gradients are ordinary tape variables, so calling `grad`
    /// on an expression built from them yields correct second-order
    /// derivatives. Variables that `y` does not depend on receive zero
    /// gradients of the appropriate shape. When only first-order *values*
    /// are needed, [`Tape::grad_values`] computes the identical numbers
    /// without growing the tape.
    pub fn grad(&self, y: Var, wrt: &[Var]) -> Vec<Var> {
        let limit = y.idx + 1;
        let useful = {
            let nodes = self.nodes.borrow();
            Tape::useful_mask(&nodes, limit, wrt)
        };
        let mut adjoint: Vec<Option<Var>> = vec![None; limit];
        let seed_shape = self.shape(y);
        adjoint[y.idx] = Some(self.constant(Tensor::ones(seed_shape)));

        for i in (0..limit).rev() {
            let Some(g) = adjoint[i] else { continue };
            // `Op` is `Copy`: reading it is a load, not a clone.
            let op = self.nodes.borrow()[i].op;
            let accumulate = |slot: Var, contribution: Var, adjoint: &mut Vec<Option<Var>>| {
                let entry = &mut adjoint[slot.idx];
                *entry = Some(match *entry {
                    None => contribution,
                    Some(existing) => self.add(existing, contribution),
                });
            };
            match op {
                Op::Const => {}
                Op::Add(a, b) => {
                    if useful[a.idx] {
                        accumulate(a, g, &mut adjoint);
                    }
                    if useful[b.idx] {
                        accumulate(b, g, &mut adjoint);
                    }
                }
                Op::Sub(a, b) => {
                    if useful[a.idx] {
                        accumulate(a, g, &mut adjoint);
                    }
                    if useful[b.idx] {
                        let ng = self.neg(g);
                        accumulate(b, ng, &mut adjoint);
                    }
                }
                Op::Mul(a, b) => {
                    if useful[a.idx] {
                        let ga = self.mul(g, b);
                        accumulate(a, ga, &mut adjoint);
                    }
                    if useful[b.idx] {
                        let gb = self.mul(g, a);
                        accumulate(b, gb, &mut adjoint);
                    }
                }
                Op::Neg(a) => {
                    if useful[a.idx] {
                        let ng = self.neg(g);
                        accumulate(a, ng, &mut adjoint);
                    }
                }
                Op::Scale(a, c) => {
                    if useful[a.idx] {
                        let gs = self.scale(g, c);
                        accumulate(a, gs, &mut adjoint);
                    }
                }
                Op::AddScalar(a, _) => {
                    if useful[a.idx] {
                        accumulate(a, g, &mut adjoint);
                    }
                }
                Op::AddBias(m, bias) => {
                    if useful[m.idx] {
                        accumulate(m, g, &mut adjoint);
                    }
                    if useful[bias.idx] {
                        let gb = self.sum_rows(g);
                        accumulate(bias, gb, &mut adjoint);
                    }
                }
                Op::Matmul(a, b) => {
                    // d(A@B): dA = g @ Bᵀ, dB = Aᵀ @ g — via the transposed
                    // kernels, so no transpose is ever materialised.
                    if useful[a.idx] {
                        let ga = self.matmul_nt(g, b);
                        accumulate(a, ga, &mut adjoint);
                    }
                    if useful[b.idx] {
                        let gb = self.matmul_tn(a, g);
                        accumulate(b, gb, &mut adjoint);
                    }
                }
                Op::MatmulNT(a, b) => {
                    // C = A @ Bᵀ: dA = g @ B, dB = gᵀ @ A.
                    if useful[a.idx] {
                        let ga = self.matmul(g, b);
                        accumulate(a, ga, &mut adjoint);
                    }
                    if useful[b.idx] {
                        let gb = self.matmul_tn(g, a);
                        accumulate(b, gb, &mut adjoint);
                    }
                }
                Op::MatmulTN(a, b) => {
                    // C = Aᵀ @ B: dA = B @ gᵀ, dB = A @ g.
                    if useful[a.idx] {
                        let ga = self.matmul_nt(b, g);
                        accumulate(a, ga, &mut adjoint);
                    }
                    if useful[b.idx] {
                        let gb = self.matmul(a, g);
                        accumulate(b, gb, &mut adjoint);
                    }
                }
                Op::Transpose(a) => {
                    if useful[a.idx] {
                        let gt = self.transpose(g);
                        accumulate(a, gt, &mut adjoint);
                    }
                }
                Op::Unary(k, x) => {
                    if useful[x.idx] {
                        let d = self.unary_derivative(k, x, Var { idx: i });
                        let gx = self.mul(g, d);
                        accumulate(x, gx, &mut adjoint);
                    }
                }
                Op::Affine { x, w, b, act } => {
                    // gm = g ∘ act'(y) pulled back through the bias add,
                    // then the two matmul adjoints via transposed kernels.
                    if useful[x.idx] || useful[w.idx] || useful[b.idx] {
                        let gm = match act {
                            Some(k) => self.act_back(g, Var { idx: i }, k),
                            None => g,
                        };
                        if useful[x.idx] {
                            let gx = self.matmul_nt(gm, w);
                            accumulate(x, gx, &mut adjoint);
                        }
                        if useful[w.idx] {
                            let gw = self.matmul_tn(x, gm);
                            accumulate(w, gw, &mut adjoint);
                        }
                        if useful[b.idx] {
                            let gb = self.sum_rows(gm);
                            accumulate(b, gb, &mut adjoint);
                        }
                    }
                }
                Op::ActBack { g: gg, y, act } => {
                    // out = gg ∘ act'(y). The gg-adjoint recreates the
                    // derivative chain; the y-adjoint mirrors, node for
                    // node, the chain the decomposed backward would have
                    // differentiated, so roundings are unchanged.
                    if useful[gg.idx] {
                        let d = self.activation_derivative_from_output(act, y);
                        let c = self.mul(g, d);
                        accumulate(gg, c, &mut adjoint);
                    }
                    if useful[y.idx] {
                        let gd = self.mul(g, gg);
                        match act {
                            // act'(y) = 1 - y² ⇒ d/dy = -2y.
                            Unary::Tanh => {
                                let c = self.mul(gd, self.scale(y, -2.0));
                                accumulate(y, c, &mut adjoint);
                            }
                            // act'(y) = y(1-y) ⇒ the product-rule pair.
                            Unary::Sigmoid => {
                                let t = self.add_scalar(self.scale(y, -1.0), 1.0);
                                let c = self.add(
                                    self.mul(gd, t),
                                    self.scale(self.mul(gd, y), -1.0),
                                );
                                accumulate(y, c, &mut adjoint);
                            }
                            // act'(y) = 1 - e⁻ʸ ⇒ d/dy = e⁻ʸ, chained
                            // through the same neg/exp/neg node shapes.
                            Unary::Softplus => {
                                let e = self.exp(self.neg(y));
                                let c = self.neg(self.mul(self.neg(gd), e));
                                accumulate(y, c, &mut adjoint);
                            }
                            // Step-function factors: second derivative is
                            // zero almost everywhere, matching the None
                            // contribution of the decomposed step nodes.
                            Unary::Relu | Unary::Relu6 => {}
                            _ => panic!("affine fusion only supports MLP activations, got {act:?}"),
                        }
                    }
                }
                Op::SliceCols(a, start, _) => {
                    if useful[a.idx] {
                        let total = self.shape(a).cols();
                        let gp = self.pad_cols(g, start, total);
                        accumulate(a, gp, &mut adjoint);
                    }
                }
                Op::PadCols(a, start, _) => {
                    if useful[a.idx] {
                        let w = self.shape(a).cols();
                        let gs = self.slice_cols(g, start, w);
                        accumulate(a, gs, &mut adjoint);
                    }
                }
                Op::SumAll(a) => {
                    if useful[a.idx] {
                        let shape = self.shape(a);
                        let gb = self.broadcast_scalar(g, shape);
                        accumulate(a, gb, &mut adjoint);
                    }
                }
                Op::SumRows(a) => {
                    if useful[a.idx] {
                        let n = self.shape(a).rows();
                        let gb = self.broadcast_rows(g, n);
                        accumulate(a, gb, &mut adjoint);
                    }
                }
                Op::BroadcastRows(a, _) => {
                    if useful[a.idx] {
                        let gs = self.sum_rows(g);
                        accumulate(a, gs, &mut adjoint);
                    }
                }
                Op::BroadcastScalar(a, _) => {
                    if useful[a.idx] {
                        let gs = self.sum_all(g);
                        accumulate(a, gs, &mut adjoint);
                    }
                }
                Op::GatherRows(a, id) => {
                    if useful[a.idx] {
                        let n = self.shape(a).rows();
                        let gs = self.scatter_add_rows(g, self.indices(id), n);
                        accumulate(a, gs, &mut adjoint);
                    }
                }
                Op::ScatterAddRows(a, id, _) => {
                    if useful[a.idx] {
                        let gg = self.gather_rows(g, self.indices(id));
                        accumulate(a, gg, &mut adjoint);
                    }
                }
                Op::MulColVec(m, v) => {
                    if useful[m.idx] {
                        let gm = self.mul_col_vec(g, v);
                        accumulate(m, gm, &mut adjoint);
                    }
                    if useful[v.idx] {
                        let gv = self.rowwise_dot(g, m);
                        accumulate(v, gv, &mut adjoint);
                    }
                }
                Op::RowwiseDot(a, b) => {
                    if useful[a.idx] {
                        let ga = self.mul_col_vec(b, g);
                        accumulate(a, ga, &mut adjoint);
                    }
                    if useful[b.idx] {
                        let gb = self.mul_col_vec(a, g);
                        accumulate(b, gb, &mut adjoint);
                    }
                }
                Op::Reshape(a, _) => {
                    if useful[a.idx] {
                        let shape = self.shape(a);
                        let gr = self.reshape(g, shape);
                        accumulate(a, gr, &mut adjoint);
                    }
                }
            }
        }

        wrt.iter()
            .map(|v| {
                assert!(v.idx < limit, "grad target created after output variable");
                adjoint[v.idx].unwrap_or_else(|| self.zeros_like(*v))
            })
            .collect()
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
        let h = 1e-6;
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                let mut xm = x.to_vec();
                xp[i] += h;
                xm[i] -= h;
                (f(&xp) - f(&xm)) / (2.0 * h)
            })
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "element {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn bulk_tanh_matches_libm() {
        // Dense sweep plus edge cases: the vectorized slice path must stay
        // within 5e-16 of libm tanh and handle saturation/NaN exactly.
        let mut xs: Vec<f64> = (-4000..=4000).map(|i| i as f64 * 0.005).collect();
        xs.extend([
            0.0, -0.0, 1e-300, -1e-300, 1e-18, 19.0, 20.0, 40.0, 1e6, -1e6,
            f64::INFINITY, f64::NEG_INFINITY,
        ]);
        let mut ys = xs.clone();
        Unary::Tanh.eval_slice(&mut ys);
        for (&x, &y) in xs.iter().zip(&ys) {
            let want = x.tanh();
            assert!(
                (y - want).abs() <= 5e-16,
                "tanh({x}): slice {y} vs libm {want}"
            );
        }
        let mut nan = [f64::NAN];
        Unary::Tanh.eval_slice(&mut nan);
        assert!(nan[0].is_nan());
        assert_eq!(ys[xs.iter().position(|&x| x == 1e6).unwrap()], 1.0);
        assert_eq!(ys[xs.iter().position(|&x| x.is_infinite() && x < 0.0).unwrap()], -1.0);
    }

    #[test]
    fn grad_of_simple_polynomial() {
        // y = sum(x² + 3x), dy/dx = 2x + 3.
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[1.0, -2.0, 0.5]));
        let y = t.sum_all(t.add(t.square(x), t.scale(x, 3.0)));
        let g = t.grad(y, &[x]);
        assert_eq!(t.value(g[0]).data(), &[5.0, -1.0, 4.0]);
    }

    #[test]
    fn grad_matches_finite_difference_mlp() {
        // One hidden layer net, all five paper activations.
        for act in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus, Unary::Relu, Unary::Relu6] {
            let w_data = [0.3, -0.2, 0.5, 0.7, -0.4, 0.1];
            let eval = |w: &[f64]| -> f64 {
                let t = Tape::new();
                let x = t.constant(Tensor::matrix(2, 2, vec![0.4, -1.2, 2.5, 0.3]));
                let w1 = t.constant(Tensor::matrix(2, 2, w[..4].to_vec()));
                let b1 = t.constant(Tensor::vector(&w[4..6]));
                let h = t.unary(act, t.add_bias(t.matmul(x, w1), b1));
                t.item(t.sum_all(t.square(h)))
            };
            let t = Tape::new();
            let x = t.constant(Tensor::matrix(2, 2, vec![0.4, -1.2, 2.5, 0.3]));
            let w1 = t.constant(Tensor::matrix(2, 2, w_data[..4].to_vec()));
            let b1 = t.constant(Tensor::vector(&w_data[4..6]));
            let h = t.unary(act, t.add_bias(t.matmul(x, w1), b1));
            let y = t.sum_all(t.square(h));
            let g = t.grad(y, &[w1, b1]);
            let fd = finite_diff(eval, &w_data);
            let mut analytic = t.value(g[0]).into_data();
            analytic.extend(t.value(g[1]).into_data());
            assert_close(&analytic, &fd, 1e-5);
        }
    }

    #[test]
    fn fused_affine_matches_unfused_composition() {
        // Same MLP as above, but through the fused layer op: value and
        // weight gradients must agree with matmul/add_bias/unary.
        for act in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus, Unary::Relu, Unary::Relu6] {
            let w_data = [0.3, -0.2, 0.5, 0.7, -0.4, 0.1];
            let t = Tape::new();
            let x = t.constant(Tensor::matrix(2, 2, vec![0.4, -1.2, 2.5, 0.3]));
            let w1 = t.constant(Tensor::matrix(2, 2, w_data[..4].to_vec()));
            let b1 = t.constant(Tensor::vector(&w_data[4..6]));
            let fused = t.affine(x, w1, b1, Some(act));
            let unfused = t.unary(act, t.add_bias(t.matmul(x, w1), b1));
            assert_eq!(t.value(fused), t.value(unfused), "{act:?} forward");
            let yf = t.sum_all(t.square(fused));
            let yu = t.sum_all(t.square(unfused));
            let gf = t.grad(yf, &[w1, b1]);
            let gu = t.grad(yu, &[w1, b1]);
            for (a, b) in gf.iter().zip(gu.iter()) {
                assert_close(t.value(*a).data(), t.value(*b).data(), 1e-12);
            }
        }
    }

    #[test]
    fn linear_affine_matches_matmul_plus_bias() {
        let t = Tape::new();
        let x = t.constant(Tensor::matrix(2, 3, vec![0.4, -1.2, 2.5, 0.3, 1.1, -0.7]));
        let w = t.constant(Tensor::matrix(3, 2, vec![0.3, -0.2, 0.5, 0.7, -0.4, 0.1]));
        let b = t.constant(Tensor::vector(&[0.25, -0.5]));
        let fused = t.affine(x, w, b, None);
        let unfused = t.add_bias(t.matmul(x, w), b);
        assert_eq!(t.value(fused), t.value(unfused));
        let g = t.grad(t.sum_all(t.square(fused)), &[x, w, b]);
        let gu = t.grad(t.sum_all(t.square(unfused)), &[x, w, b]);
        for (a, b) in g.iter().zip(gu.iter()) {
            assert_close(t.value(*a).data(), t.value(*b).data(), 1e-12);
        }
    }

    #[test]
    fn transposed_matmul_gradients_match_explicit_transpose() {
        let a0 = Tensor::matrix(2, 3, vec![1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b0 = Tensor::matrix(4, 3, (0..12).map(|v| v as f64 * 0.25 - 1.0).collect());
        // NT: a @ b0ᵀ versus a @ transpose(b0).
        let t = Tape::new();
        let a = t.constant(a0.clone());
        let b = t.constant(b0.clone());
        let nt = t.matmul_nt(a, b);
        let explicit = t.matmul(a, t.transpose(b));
        assert_eq!(t.value(nt), t.value(explicit));
        let g = t.grad(t.sum_all(t.square(nt)), &[a, b]);
        let ge = t.grad(t.sum_all(t.square(explicit)), &[a, b]);
        assert_close(t.value(g[0]).data(), t.value(ge[0]).data(), 1e-12);
        assert_close(t.value(g[1]).data(), t.value(ge[1]).data(), 1e-12);
        // TN: b0ᵀ @ c versus transpose(b0) @ c.
        let t2 = Tape::new();
        let b2 = t2.constant(b0);
        let c = t2.constant(Tensor::matrix(4, 2, (0..8).map(|v| (v as f64).cos()).collect()));
        let tn = t2.matmul_tn(b2, c);
        let explicit2 = t2.matmul(t2.transpose(b2), c);
        assert_eq!(t2.value(tn), t2.value(explicit2));
        let g2 = t2.grad(t2.sum_all(t2.square(tn)), &[b2, c]);
        let ge2 = t2.grad(t2.sum_all(t2.square(explicit2)), &[b2, c]);
        assert_close(t2.value(g2[0]).data(), t2.value(ge2[0]).data(), 1e-12);
        assert_close(t2.value(g2[1]).data(), t2.value(ge2[1]).data(), 1e-12);
    }

    #[test]
    fn affine_double_backward_matches_unfused() {
        // Force-matching shape: E built through a fused layer, F = -dE/dx,
        // then d(sum F²)/dw — second-order through the fused backward.
        for act in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus] {
            let run = |fused: bool| -> (Vec<f64>, Vec<f64>) {
                let t = Tape::new();
                let x = t.constant(Tensor::matrix(1, 2, vec![0.5, -1.0]));
                let w1 = t.constant(Tensor::matrix(2, 2, vec![0.2, -0.6, 0.4, 0.9]));
                let b1 = t.constant(Tensor::vector(&[0.1, -0.3]));
                let w2 = t.constant(Tensor::matrix(2, 1, vec![0.1, -0.3]));
                let h = if fused {
                    t.affine(x, w1, b1, Some(act))
                } else {
                    t.unary(act, t.add_bias(t.matmul(x, w1), b1))
                };
                let e = t.sum_all(t.matmul(h, w2));
                let f = t.neg(t.grad(e, &[x])[0]);
                let l = t.sum_all(t.square(f));
                let g = t.grad(l, &[w1, b1]);
                (t.value(g[0]).into_data(), t.value(g[1]).into_data())
            };
            let (gw_f, gb_f) = run(true);
            let (gw_u, gb_u) = run(false);
            assert_close(&gw_f, &gw_u, 1e-10);
            assert_close(&gb_f, &gb_u, 1e-10);
        }
    }

    #[test]
    fn reset_recycles_buffers_and_preserves_results() {
        let t = Tape::new();
        let run = |t: &Tape| -> Vec<f64> {
            let x = t.constant(Tensor::matrix(2, 2, vec![0.4, -1.2, 2.5, 0.3]));
            let w = t.constant(Tensor::matrix(2, 2, vec![0.3, -0.2, 0.5, 0.7]));
            let b = t.constant(Tensor::vector(&[-0.4, 0.1]));
            let h = t.affine(x, w, b, Some(Unary::Tanh));
            let y = t.sum_all(t.square(h));
            let g = t.grad(y, &[w]);
            t.value(g[0]).into_data()
        };
        let first = run(&t);
        let nodes_first = t.len();
        t.reset();
        assert_eq!(t.len(), 0);
        assert!(t.pooled_buffers() > 0, "reset should recycle value buffers");
        // An identical second pass reuses the arena and reproduces the
        // result bit-for-bit.
        let second = run(&t);
        assert_eq!(t.len(), nodes_first);
        assert_eq!(first, second);
    }

    #[test]
    fn alloc_metering_counts_hits_misses_and_bytes() {
        let t = Tape::new();
        let run = |t: &Tape| {
            let x = t.constant(Tensor::matrix(2, 2, vec![0.4, -1.2, 2.5, 0.3]));
            let w = t.constant(Tensor::matrix(2, 2, vec![0.3, -0.2, 0.5, 0.7]));
            let y = t.sum_all(t.square(t.matmul(x, w)));
            t.value(y).into_data()
        };
        assert!(!t.alloc_metering());
        t.set_alloc_metering(true);
        let unmetered_result = {
            let u = Tape::new();
            run(&u)
        };
        let first = run(&t);
        assert_eq!(first, unmetered_result, "metering must not perturb values");
        t.reset();
        let cold = t.take_alloc_stats();
        assert_eq!(cold.leases, cold.pool_hits + cold.pool_misses);
        assert!(cold.pool_misses > 0, "cold pass allocates fresh");
        assert!(cold.fresh_bytes > 0);
        assert!(cold.leased_bytes_hw >= cold.fresh_bytes);
        assert!(t.retained_bytes() > 0, "reset retains capacity in the pool");
        let second = run(&t);
        t.reset();
        assert_eq!(first, second);
        let warm = t.take_alloc_stats();
        assert_eq!(warm.pool_misses, 0, "warm pass runs allocation-free");
        assert_eq!(warm.pool_hits, cold.leases);
        let total = t.alloc_stats();
        assert_eq!(total.leases, cold.leases + warm.leases);
        assert_eq!(total.fresh_bytes, cold.fresh_bytes);
    }

    #[test]
    fn op_census_labels_every_kernel_deterministically() {
        let t = Tape::new();
        let x = t.constant(Tensor::matrix(2, 2, vec![0.4, -1.2, 2.5, 0.3]));
        let w = t.constant(Tensor::matrix(2, 2, vec![0.3, -0.2, 0.5, 0.7]));
        let b = t.constant(Tensor::vector(&[-0.4, 0.1]));
        let start = t.len();
        let h = t.affine(x, w, b, Some(Unary::Tanh));
        let _ = t.sum_all(t.square(h));
        let census = t.op_census(start..t.len());
        assert_eq!(census, vec![("affine", 1), ("square", 1), ("sum_all", 1)]);
        let full = t.op_census(0..t.len());
        assert!(full.contains(&("const", 3)));
        assert_eq!(full.iter().map(|(_, c)| c).sum::<usize>(), t.len());
    }

    #[test]
    fn grad_values_matches_taped_grad_bitwise() {
        // The value-level backward must reproduce the taped backward
        // bit-for-bit over a graph exercising every hot-path op: fused
        // affine layers, an inner (taped) force gradient, gather/scatter,
        // col-vec scaling, and the force-matching loss shape.
        let t = Tape::new();
        for act in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus, Unary::Relu, Unary::Relu6] {
            let x = t.constant(Tensor::matrix(3, 2, vec![0.4, -1.2, 2.5, 0.3, -0.7, 1.1]));
            let w1 =
                t.constant(Tensor::matrix(2, 4, (0..8).map(|i| 0.25 - 0.07 * i as f64).collect()));
            let b1 = t.constant(Tensor::vector(&[0.1, -0.2, 0.05, 0.3]));
            let w2 = t.constant(Tensor::matrix(4, 1, vec![0.4, -0.1, 0.2, 0.6]));
            let b2 = t.constant(Tensor::vector(&[0.02]));
            let s = t.constant(Tensor::vector(&[0.9, 0.5, 1.3]));
            let h = t.affine(x, w1, b1, Some(act));
            let weighted = t.mul_col_vec(h, s);
            let idx: Rc<[usize]> = Rc::from(vec![0usize, 1, 1]);
            let pooled = t.scatter_add_rows(weighted, Rc::clone(&idx), 2);
            let picked = t.gather_rows(pooled, Rc::from(vec![0usize, 1, 0]));
            let e = t.sum_all(t.affine(picked, w2, b2, None));
            // Inner taped gradient (the force path) — the outer backward
            // must traverse these adjoint nodes too.
            let fx = t.grad(e, &[x])[0];
            let loss = t.add(t.sum_all(t.square(fx)), e);
            let wrt = [w1, b1, w2, b2, x, s];
            let taped: Vec<Tensor> = t.grad(loss, &wrt).iter().map(|&g| t.value(g)).collect();
            let before = t.len();
            let values = t.grad_values(loss, &wrt);
            assert_eq!(t.len(), before, "grad_values must not record nodes");
            for (a, b) in values.iter().zip(taped.iter()) {
                assert_eq!(a.shape(), b.shape());
                assert_eq!(a.data(), b.data(), "{act:?}");
            }
            t.reset();
        }
    }

    #[test]
    fn grad_values_zero_for_unused_and_duplicate_targets() {
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[1.0, 2.0]));
        let unused = t.constant(Tensor::matrix(2, 2, vec![1.0; 4]));
        let y = t.sum_all(t.square(x));
        let g = t.grad_values(y, &[x, unused, x]);
        assert_eq!(g[0].data(), &[2.0, 4.0]);
        assert_eq!(g[1].shape(), Shape::D2(2, 2));
        assert!(g[1].data().iter().all(|&v| v == 0.0));
        assert_eq!(g[2].data(), g[0].data(), "duplicate targets get the same gradient");
    }

    #[test]
    fn reset_leaves_externally_held_values_untouched() {
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[1.0, 2.0, 3.0]));
        let y = t.scale(x, 2.0);
        let kept = t.value(y);
        t.reset();
        // The extracted tensor still owns its buffer...
        assert_eq!(kept.data(), &[2.0, 4.0, 6.0]);
        // ...and a new op of the same size must not clobber it.
        let z = t.constant(Tensor::vector(&[9.0, 9.0, 9.0]));
        let _ = t.scale(z, 1.0);
        assert_eq!(kept.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn gather_scatter_gradients() {
        // y = sum(gather(x, [0,0,2])²); dy/dx0 counts both gathers of row 0.
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[2.0, 5.0, -1.0]));
        let idx: Rc<[usize]> = Rc::from(vec![0usize, 0, 2]);
        let g1 = t.gather_rows(x, idx);
        let y = t.sum_all(t.square(g1));
        let g = t.grad(y, &[x]);
        assert_eq!(t.value(g[0]).data(), &[8.0, 0.0, -2.0]);
    }

    #[test]
    fn affine_population_matches_per_genome_affine_bitwise() {
        // Three genomes with different first-layer widths over one shared
        // [m,1] input, including negative zeros produced by sign flips and
        // biases that are themselves ±0.0 — the fused sweep must reproduce
        // every per-genome bit, and gradients must flow as if each affine
        // had been recorded individually.
        let t = Tape::new();
        let x = t.constant(Tensor::matrix(5, 1, vec![0.3, -1.2, 0.0, -0.0, 7.5]));
        let specs: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![0.5, -0.25, 3.0], vec![0.1, -0.2, 0.3]),
            (vec![-0.0, 2.0], vec![-0.0, 0.0]),
            (vec![1.0, 0.0, -1.0, 0.5, 4.0], vec![0.0, -0.0, 1.0, -1.0, 0.25]),
        ];
        let layers: Vec<(Var, Var)> = specs
            .iter()
            .map(|(w, b)| {
                (t.constant(Tensor::matrix(1, w.len(), w.clone())), t.constant(Tensor::vector(b)))
            })
            .collect();
        for act in [None, Some(Unary::Tanh)] {
            let fused = t.affine_population(x, &layers, act);
            for (&(w, b), f) in layers.iter().zip(&fused) {
                let solo = t.affine(x, w, b, act);
                let (fv, sv) = (t.value(*f), t.value(solo));
                assert_eq!(fv.shape(), sv.shape());
                for (a, r) in fv.data().iter().zip(sv.data()) {
                    assert_eq!(a.to_bits(), r.to_bits(), "fused {a} vs solo {r}");
                }
                // The fused node is an ordinary affine: same gradients.
                let gf = t.grad(t.sum_all(*f), &[x, w, b]);
                let gs = t.grad(t.sum_all(solo), &[x, w, b]);
                for (a, b) in gf.iter().zip(&gs) {
                    assert_eq!(t.value(*a).data(), t.value(*b).data());
                }
            }
        }
    }

    #[test]
    fn slice_and_pad_cols_values_and_gradients() {
        let t = Tape::new();
        let x = t.constant(Tensor::matrix(2, 4, (0..8).map(|v| v as f64 + 1.0).collect()));
        // slice_cols picks a contiguous column window.
        let mid = t.slice_cols(x, 1, 2);
        assert_eq!(t.value(mid).shape(), Shape::D2(2, 2));
        assert_eq!(t.value(mid).data(), &[2.0, 3.0, 6.0, 7.0]);
        // pad_cols embeds it back at an offset, zero elsewhere.
        let padded = t.pad_cols(mid, 2, 5);
        assert_eq!(t.value(padded).shape(), Shape::D2(2, 5));
        assert_eq!(t.value(padded).data(), &[0.0, 0.0, 2.0, 3.0, 0.0, 0.0, 0.0, 6.0, 7.0, 0.0]);
        // Gradient of sum(slice²) touches only the sliced columns of x.
        let y = t.sum_all(t.square(mid));
        let g = t.grad(y, &[x]);
        assert_eq!(t.value(g[0]).data(), &[0.0, 4.0, 6.0, 0.0, 0.0, 12.0, 14.0, 0.0]);
        // Gradient through the pad is the slice of the padded adjoint.
        let y2 = t.sum_all(t.square(padded));
        let g2 = t.grad(y2, &[x]);
        assert_eq!(t.value(g2[0]).data(), t.value(g[0]).data());
    }

    #[test]
    fn pad_cols_concat_round_trips_and_is_closed_under_double_backward() {
        // The population-fusion pattern: embed per-genome weight rows into a
        // wide matrix via pad_cols + add, run one shared-input layer, slice
        // each lane back out, and keep every loss per-genome. With a width-1
        // input the matmul is a single product per element and the other
        // lanes contribute exact ±0.0 terms to each reduction, so values,
        // per-genome inner (force-style) gradients, and second-order weight
        // gradients all match the unfused per-genome graphs to the last ulp
        // (`==`; signed zeros compare equal). Summing *across* lanes instead
        // would reorder the shared-input reduction — that is exactly what
        // population mode never does.
        let run = |fused: bool| -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
            let t = Tape::new();
            let x = t.constant(Tensor::matrix(3, 1, vec![0.4, -1.2, 2.5]));
            let wa = t.constant(Tensor::matrix(1, 2, vec![0.3, -0.2]));
            let wb = t.constant(Tensor::matrix(1, 2, vec![0.5, 0.7]));
            let (ha, hb) = if fused {
                let wide = t.add(t.pad_cols(wa, 0, 4), t.pad_cols(wb, 2, 4));
                let h = t.tanh(t.matmul(x, wide));
                (t.slice_cols(h, 0, 2), t.slice_cols(h, 2, 2))
            } else {
                (t.tanh(t.matmul(x, wa)), t.tanh(t.matmul(x, wb)))
            };
            // Per-genome energies, inner (force-style) gradients, and
            // second-order weight gradients — no cross-genome reduction.
            let ea = t.sum_all(ha);
            let eb = t.sum_all(hb);
            let fa = t.grad(ea, &[x])[0];
            let fb = t.grad(eb, &[x])[0];
            let ga = t.grad(t.sum_all(t.square(fa)), &[wa])[0];
            let gb = t.grad(t.sum_all(t.square(fb)), &[wb])[0];
            (
                t.value(fa).into_data(),
                t.value(fb).into_data(),
                t.value(ga).into_data(),
                t.value(gb).into_data(),
            )
        };
        let (fa_f, fb_f, ga_f, gb_f) = run(true);
        let (fa_u, fb_u, ga_u, gb_u) = run(false);
        assert_eq!(fa_f, fa_u);
        assert_eq!(fb_f, fb_u);
        assert_eq!(ga_f, ga_u);
        assert_eq!(gb_f, gb_u);
    }

    #[test]
    fn grad_values_matches_taped_grad_for_slice_and_pad() {
        let t = Tape::new();
        let x = t.constant(Tensor::matrix(3, 2, vec![0.4, -1.2, 2.5, 0.3, -0.7, 1.1]));
        let w = t.constant(Tensor::matrix(2, 3, (0..6).map(|i| 0.3 - 0.11 * i as f64).collect()));
        let h = t.tanh(t.matmul(x, w));
        let left = t.slice_cols(h, 0, 2);
        let right = t.slice_cols(h, 2, 1);
        let back = t.add(t.pad_cols(left, 1, 3), t.pad_cols(right, 0, 3));
        let loss = t.sum_all(t.square(back));
        let wrt = [x, w];
        let taped: Vec<Tensor> = t.grad(loss, &wrt).iter().map(|&g| t.value(g)).collect();
        let values = t.grad_values(loss, &wrt);
        for (a, b) in values.iter().zip(taped.iter()) {
            assert_eq!(a.shape(), b.shape());
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn mul_col_vec_and_rowwise_dot_gradients() {
        let m0 = [1.0, 2.0, 3.0, 4.0];
        let v0 = [0.5, -1.5];
        let eval = |p: &[f64]| -> f64 {
            let t = Tape::new();
            let m = t.constant(Tensor::matrix(2, 2, p[..4].to_vec()));
            let v = t.constant(Tensor::vector(&p[4..6]));
            let s = t.mul_col_vec(m, v);
            let d = t.rowwise_dot(s, m);
            t.item(t.sum_all(t.square(d)))
        };
        let t = Tape::new();
        let m = t.constant(Tensor::matrix(2, 2, m0.to_vec()));
        let v = t.constant(Tensor::vector(&v0));
        let s = t.mul_col_vec(m, v);
        let d = t.rowwise_dot(s, m);
        let y = t.sum_all(t.square(d));
        let g = t.grad(y, &[m, v]);
        let mut p = m0.to_vec();
        p.extend_from_slice(&v0);
        let fd = finite_diff(eval, &p);
        let mut analytic = t.value(g[0]).into_data();
        analytic.extend(t.value(g[1]).into_data());
        assert_close(&analytic, &fd, 1e-5);
    }

    #[test]
    fn double_backward_cubic() {
        // y = sum(x³) → dy/dx = 3x² → d²y/dx² (diag) = 6x.
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[1.5, -0.5, 2.0]));
        let y = t.sum_all(t.mul(t.square(x), x));
        let g = t.grad(y, &[x])[0];
        // Differentiating sum(g) gives the Hessian row sums = 6x for a
        // diagonal Hessian.
        let sg = t.sum_all(g);
        let h = t.grad(sg, &[x])[0];
        assert_close(t.value(h).data(), &[9.0, -3.0, 12.0], 1e-12);
    }

    #[test]
    fn double_backward_through_tanh() {
        // f = tanh(x); check d²f/dx² = -2 tanh (1 - tanh²) via double grad.
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[0.7]));
        let y = t.sum_all(t.tanh(x));
        let g = t.grad(y, &[x])[0];
        let h = t.grad(t.sum_all(g), &[x])[0];
        let v: f64 = 0.7;
        let expected = -2.0 * v.tanh() * (1.0 - v.tanh() * v.tanh());
        assert_close(t.value(h).data(), &[expected], 1e-12);
    }

    #[test]
    fn force_matching_style_second_order() {
        // The critical DNNP pattern: E = net(x); F = -dE/dx;
        // L = sum((F - F*)²); dL/dw checked against finite differences of L.
        let w0 = [0.2, -0.6, 0.4, 0.9, 0.1, -0.3];
        let x0 = [0.5, -1.0];
        let f_star = [0.3, -0.2];
        let loss = |w: &[f64]| -> f64 {
            let t = Tape::new();
            let x = t.constant(Tensor::matrix(1, 2, x0.to_vec()));
            let w1 = t.constant(Tensor::matrix(2, 2, w[..4].to_vec()));
            let w2 = t.constant(Tensor::matrix(2, 1, w[4..6].to_vec()));
            let e = t.sum_all(t.matmul(t.tanh(t.matmul(x, w1)), w2));
            let de_dx = t.grad(e, &[x])[0];
            let f = t.neg(de_dx);
            let fs = t.constant(Tensor::matrix(1, 2, f_star.to_vec()));
            t.item(t.sum_all(t.square(t.sub(f, fs))))
        };
        let t = Tape::new();
        let x = t.constant(Tensor::matrix(1, 2, x0.to_vec()));
        let w1 = t.constant(Tensor::matrix(2, 2, w0[..4].to_vec()));
        let w2 = t.constant(Tensor::matrix(2, 1, w0[4..6].to_vec()));
        let e = t.sum_all(t.matmul(t.tanh(t.matmul(x, w1)), w2));
        let de_dx = t.grad(e, &[x])[0];
        let f = t.neg(de_dx);
        let fs = t.constant(Tensor::matrix(1, 2, f_star.to_vec()));
        let l = t.sum_all(t.square(t.sub(f, fs)));
        let grads = t.grad(l, &[w1, w2]);
        let mut analytic = t.value(grads[0]).into_data();
        analytic.extend(t.value(grads[1]).into_data());
        let fd = finite_diff(loss, &w0);
        assert_close(&analytic, &fd, 1e-4);
    }

    #[test]
    fn grad_of_independent_variable_is_zero() {
        let t = Tape::new();
        let x = t.constant(Tensor::vector(&[1.0]));
        let z = t.constant(Tensor::vector(&[4.0, 4.0]));
        let y = t.sum_all(t.square(x));
        let g = t.grad(y, &[z]);
        assert_eq!(t.value(g[0]).data(), &[0.0, 0.0]);
    }

    #[test]
    fn switching_function_composition_is_differentiable() {
        // s(r) = (1/r)·p(clamp01(u)), u = (r-rmin)/(rmax-rmin),
        // p(u) = 1 + u³(-6u² + 15u - 10) — smooth from 1/r to 0.
        let rmin = 2.0;
        let rmax = 6.0;
        let s_of = |r: f64| -> f64 {
            let u = ((r - rmin) / (rmax - rmin)).clamp(0.0, 1.0);
            (1.0 / r) * (1.0 + u * u * u * (-6.0 * u * u + 15.0 * u - 10.0))
        };
        let t = Tape::new();
        let r = t.constant(Tensor::vector(&[1.0, 3.0, 5.9, 7.0]));
        let u = t.clamp01(t.scale(t.add_scalar(r, -rmin), 1.0 / (rmax - rmin)));
        let u3 = t.mul(t.square(u), u);
        let poly = t.add_scalar(
            t.mul(
                u3,
                t.add_scalar(
                    t.add(t.scale(t.square(u), -6.0), t.scale(u, 15.0)),
                    -10.0,
                ),
            ),
            1.0,
        );
        let s = t.mul(t.recip(r), poly);
        let vals = t.value(s);
        for (i, &rv) in [1.0, 3.0, 5.9, 7.0].iter().enumerate() {
            assert!((vals.data()[i] - s_of(rv)).abs() < 1e-12);
        }
        // r < rmin behaves as 1/r; r > rmax is exactly zero.
        assert!((vals.data()[0] - 1.0).abs() < 1e-12);
        assert!(vals.data()[3].abs() < 1e-15);
        // And the whole thing is differentiable.
        let g = t.grad(t.sum_all(s), &[r]);
        let gv = t.value(g[0]);
        assert!((gv.data()[0] + 1.0).abs() < 1e-9); // d(1/r)/dr = -1 at r=1
        assert!(gv.data()[3].abs() < 1e-15);
    }
}
