//! Property-based finite-difference validation of every differentiable
//! primitive, plus second-order spot checks.

use dphpo_autograd::{Shape, Tape, Tensor, Unary};
use proptest::prelude::*;

fn finite_diff(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let h = 1e-6;
    (0..x.len())
        .map(|i| {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            (f(&xp) - f(&xm)) / (2.0 * h)
        })
        .collect()
}

fn check_unary(kind: Unary, data: &[f64]) {
    // Keep away from the kinks of relu/relu6 where finite differences are
    // invalid.
    let safe: Vec<f64> = data
        .iter()
        .map(|&v| {
            let mut v = v;
            for kink in [0.0, 1.0, 6.0] {
                if (v - kink).abs() < 1e-3 {
                    v += 2e-3;
                }
            }
            v
        })
        .collect();
    let eval = |x: &[f64]| -> f64 {
        let tape = Tape::new();
        let v = tape.constant(Tensor::vector(x));
        tape.item(tape.sum_all(tape.unary(kind, v)))
    };
    let tape = Tape::new();
    let v = tape.constant(Tensor::vector(&safe));
    let y = tape.sum_all(tape.unary(kind, v));
    let g = tape.grad(y, &[v])[0];
    let analytic = tape.value(g);
    let numeric = finite_diff(eval, &safe);
    for (a, n) in analytic.data().iter().zip(numeric.iter()) {
        assert!(
            (a - n).abs() < 1e-4 * (1.0 + n.abs()),
            "{kind:?}: {a} vs {n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unary_gradients_match_finite_differences(
        data in prop::collection::vec(-3.0f64..3.0, 1..12)
    ) {
        for kind in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus, Unary::Relu,
                     Unary::Relu6, Unary::Square] {
            check_unary(kind, &data);
        }
    }

    #[test]
    fn positive_domain_unary_gradients(
        data in prop::collection::vec(0.1f64..4.0, 1..12)
    ) {
        for kind in [Unary::Sqrt, Unary::Recip, Unary::Exp] {
            check_unary(kind, &data);
        }
    }

    #[test]
    fn structural_op_gradients(
        data in prop::collection::vec(-2.0f64..2.0, 6)
    ) {
        // Compose sum_rows → broadcast_rows → reshape → mul and check the
        // whole chain against finite differences.
        let eval = |x: &[f64]| -> f64 {
            let tape = Tape::new();
            let m = tape.constant(Tensor::matrix(2, 3, x.to_vec()));
            let cols = tape.sum_rows(m);                     // [3]
            let back = tape.broadcast_rows(cols, 2);         // [2,3]
            let flat = tape.reshape(back, Shape::D1(6));     // [6]
            let orig = tape.reshape(m, Shape::D1(6));
            tape.item(tape.sum_all(tape.mul(flat, orig)))
        };
        let tape = Tape::new();
        let m = tape.constant(Tensor::matrix(2, 3, data.clone()));
        let cols = tape.sum_rows(m);
        let back = tape.broadcast_rows(cols, 2);
        let flat = tape.reshape(back, Shape::D1(6));
        let orig = tape.reshape(m, Shape::D1(6));
        let y = tape.sum_all(tape.mul(flat, orig));
        let g = tape.grad(y, &[m])[0];
        let numeric = finite_diff(eval, &data);
        for (a, n) in tape.value(g).data().iter().zip(numeric.iter()) {
            prop_assert!((a - n).abs() < 1e-4 * (1.0 + n.abs()));
        }
    }

    #[test]
    fn second_derivative_of_quartic(x0 in -1.5f64..1.5) {
        // y = x⁴ → y'' = 12x².
        let tape = Tape::new();
        let x = tape.constant(Tensor::vector(&[x0]));
        let y = tape.sum_all(tape.square(tape.square(x)));
        let g = tape.grad(y, &[x])[0];
        let h = tape.grad(tape.sum_all(g), &[x])[0];
        let expected = 12.0 * x0 * x0;
        prop_assert!((tape.value(h).data()[0] - expected).abs() < 1e-8 * (1.0 + expected));
    }

    #[test]
    fn add_bias_and_sum_rows_are_adjoint(
        m in prop::collection::vec(-2.0f64..2.0, 6),
        bias in prop::collection::vec(-2.0f64..2.0, 3)
    ) {
        // d(sum(M + 1·bᵀ))/db = column counts: each bias column contributes
        // once per row.
        let tape = Tape::new();
        let vm = tape.constant(Tensor::matrix(2, 3, m));
        let vb = tape.constant(Tensor::vector(&bias));
        let y = tape.sum_all(tape.add_bias(vm, vb));
        let g = tape.grad(y, &[vb])[0];
        for v in tape.value(g).data() {
            prop_assert!((v - 2.0).abs() < 1e-12);
        }
    }
}
