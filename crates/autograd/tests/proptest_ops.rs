//! Property-based finite-difference validation of every differentiable
//! primitive, plus second-order spot checks.

use dphpo_autograd::{Shape, Tape, Tensor, Unary};
use proptest::prelude::*;

fn finite_diff(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let h = 1e-6;
    (0..x.len())
        .map(|i| {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            (f(&xp) - f(&xm)) / (2.0 * h)
        })
        .collect()
}

fn check_unary(kind: Unary, data: &[f64]) {
    // Keep away from the kinks of relu/relu6 where finite differences are
    // invalid.
    let safe: Vec<f64> = data
        .iter()
        .map(|&v| {
            let mut v = v;
            for kink in [0.0, 1.0, 6.0] {
                if (v - kink).abs() < 1e-3 {
                    v += 2e-3;
                }
            }
            v
        })
        .collect();
    let eval = |x: &[f64]| -> f64 {
        let tape = Tape::new();
        let v = tape.constant(Tensor::vector(x));
        tape.item(tape.sum_all(tape.unary(kind, v)))
    };
    let tape = Tape::new();
    let v = tape.constant(Tensor::vector(&safe));
    let y = tape.sum_all(tape.unary(kind, v));
    let g = tape.grad(y, &[v])[0];
    let analytic = tape.value(g);
    let numeric = finite_diff(eval, &safe);
    for (a, n) in analytic.data().iter().zip(numeric.iter()) {
        assert!(
            (a - n).abs() < 1e-4 * (1.0 + n.abs()),
            "{kind:?}: {a} vs {n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unary_gradients_match_finite_differences(
        data in prop::collection::vec(-3.0f64..3.0, 1..12)
    ) {
        for kind in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus, Unary::Relu,
                     Unary::Relu6, Unary::Square] {
            check_unary(kind, &data);
        }
    }

    #[test]
    fn positive_domain_unary_gradients(
        data in prop::collection::vec(0.1f64..4.0, 1..12)
    ) {
        for kind in [Unary::Sqrt, Unary::Recip, Unary::Exp] {
            check_unary(kind, &data);
        }
    }

    #[test]
    fn structural_op_gradients(
        data in prop::collection::vec(-2.0f64..2.0, 6)
    ) {
        // Compose sum_rows → broadcast_rows → reshape → mul and check the
        // whole chain against finite differences.
        let eval = |x: &[f64]| -> f64 {
            let tape = Tape::new();
            let m = tape.constant(Tensor::matrix(2, 3, x.to_vec()));
            let cols = tape.sum_rows(m);                     // [3]
            let back = tape.broadcast_rows(cols, 2);         // [2,3]
            let flat = tape.reshape(back, Shape::D1(6));     // [6]
            let orig = tape.reshape(m, Shape::D1(6));
            tape.item(tape.sum_all(tape.mul(flat, orig)))
        };
        let tape = Tape::new();
        let m = tape.constant(Tensor::matrix(2, 3, data.clone()));
        let cols = tape.sum_rows(m);
        let back = tape.broadcast_rows(cols, 2);
        let flat = tape.reshape(back, Shape::D1(6));
        let orig = tape.reshape(m, Shape::D1(6));
        let y = tape.sum_all(tape.mul(flat, orig));
        let g = tape.grad(y, &[m])[0];
        let numeric = finite_diff(eval, &data);
        for (a, n) in tape.value(g).data().iter().zip(numeric.iter()) {
            prop_assert!((a - n).abs() < 1e-4 * (1.0 + n.abs()));
        }
    }

    #[test]
    fn second_derivative_of_quartic(x0 in -1.5f64..1.5) {
        // y = x⁴ → y'' = 12x².
        let tape = Tape::new();
        let x = tape.constant(Tensor::vector(&[x0]));
        let y = tape.sum_all(tape.square(tape.square(x)));
        let g = tape.grad(y, &[x])[0];
        let h = tape.grad(tape.sum_all(g), &[x])[0];
        let expected = 12.0 * x0 * x0;
        prop_assert!((tape.value(h).data()[0] - expected).abs() < 1e-8 * (1.0 + expected));
    }

    #[test]
    fn fused_affine_matches_unfused_composition(
        dims in (1usize..5, 1usize..5, 1usize..5),
        pool in prop::collection::vec(-1.5f64..1.5, 75)
    ) {
        // act(x@w + b) as one fused node must equal the three-op spelling in
        // value, first derivative, and second derivative, for every MLP
        // activation. (Tolerance, not equality: e.g. the fused softplus
        // backward computes σ as 1−e^{−softplus(u)}, which rounds
        // differently from σ(u).)
        let (m, k, n) = dims;
        let xs = &pool[..m * k];
        let ws = &pool[25..25 + k * n];
        let bs = &pool[50..50 + n];
        for act in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus, Unary::Relu, Unary::Relu6] {
            let run = |fused: bool| -> (Vec<f64>, Vec<f64>, Vec<f64>) {
                let t = Tape::new();
                let x = t.constant(Tensor::matrix(m, k, xs.to_vec()));
                let w = t.constant(Tensor::matrix(k, n, ws.to_vec()));
                let b = t.constant(Tensor::vector(bs));
                let h = if fused {
                    t.affine(x, w, b, Some(act))
                } else {
                    t.unary(act, t.add_bias(t.matmul(x, w), b))
                };
                // First order: dL/dw for L = Σ h². Second order: the
                // force-matching shape d(Σ (dL'/dx)²)/dw with L' = Σ h.
                let l = t.sum_all(t.square(h));
                let gw = t.grad(l, &[w])[0];
                let gx = t.grad(t.sum_all(h), &[x])[0];
                let hw = t.grad(t.sum_all(t.square(gx)), &[w])[0];
                (t.value(h).into_data(), t.value(gw).into_data(), t.value(hw).into_data())
            };
            let (v_f, g_f, h_f) = run(true);
            let (v_u, g_u, h_u) = run(false);
            for (a, b) in v_f.iter().zip(v_u.iter()) {
                prop_assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "{act:?} value");
            }
            for (a, b) in g_f.iter().zip(g_u.iter()) {
                prop_assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "{act:?} grad");
            }
            for (a, b) in h_f.iter().zip(h_u.iter()) {
                prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{act:?} 2nd order");
            }
        }
    }

    #[test]
    fn transposed_matmuls_match_matmul_with_transpose(
        dims in (1usize..5, 1usize..5, 1usize..5),
        pool in prop::collection::vec(-2.0f64..2.0, 50)
    ) {
        let (m, k, p) = dims;
        let a_data = &pool[..m * k];
        let b_data = &pool[25..25 + p * k];
        // NT: A[m,k] @ (B[p,k])ᵀ — values and both gradients.
        {
            let t = Tape::new();
            let a = t.constant(Tensor::matrix(m, k, a_data.to_vec()));
            let b = t.constant(Tensor::matrix(p, k, b_data.to_vec()));
            let nt = t.matmul_nt(a, b);
            let explicit = t.matmul(a, t.transpose(b));
            prop_assert_eq!(t.value(nt), t.value(explicit));
            let g = t.grad(t.sum_all(t.square(nt)), &[a, b]);
            let ge = t.grad(t.sum_all(t.square(explicit)), &[a, b]);
            for (x, y) in g.iter().zip(ge.iter()) {
                for (va, vb) in t.value(*x).data().iter().zip(t.value(*y).data()) {
                    prop_assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()));
                }
            }
        }
        // TN: (A[k,m])ᵀ @ B[k,p].
        {
            let t = Tape::new();
            let a = t.constant(Tensor::matrix(k, m, a_data.to_vec()));
            let b = t.constant(Tensor::matrix(k, p, b_data[..k * p].to_vec()));
            let tn = t.matmul_tn(a, b);
            let explicit = t.matmul(t.transpose(a), b);
            prop_assert_eq!(t.value(tn), t.value(explicit));
            let g = t.grad(t.sum_all(t.square(tn)), &[a, b]);
            let ge = t.grad(t.sum_all(t.square(explicit)), &[a, b]);
            for (x, y) in g.iter().zip(ge.iter()) {
                for (va, vb) in t.value(*x).data().iter().zip(t.value(*y).data()) {
                    prop_assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()));
                }
            }
        }
    }

    #[test]
    fn tape_reset_reproduces_results_bitwise(
        data in prop::collection::vec(-2.0f64..2.0, 12)
    ) {
        // Rebuilding the same graph on a reset (pooled) tape must reproduce
        // the gradient bit-for-bit — pooling can never leak stale values.
        let t = Tape::new();
        let run = |t: &Tape| -> Vec<f64> {
            let x = t.constant(Tensor::matrix(3, 4, data.clone()));
            let w = t.constant(Tensor::matrix(4, 2, (0..8).map(|i| 0.3 - 0.1 * i as f64).collect()));
            let b = t.constant(Tensor::vector(&[0.1, -0.2]));
            let h = t.affine(x, w, b, Some(Unary::Tanh));
            let g = t.grad(t.sum_all(t.square(h)), &[w])[0];
            t.value(g).into_data()
        };
        let first = run(&t);
        t.reset();
        let second = run(&t);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn matmul_family_matches_naive_scalar_reference_bitwise(
        dims in (0usize..14, 0usize..14, 0usize..14),
        pool in prop::collection::vec(-2.0f64..2.0, 2 * 13 * 13)
    ) {
        // The tiled/packed SIMD kernels promise the *exact* bits of a naive
        // triple loop that accumulates each output element independently in
        // ascending k order (DESIGN.md §10): no mul_add, no zero-skip, no
        // reduction-axis blocking. Odd sizes exercise every remainder-lane
        // path of the const-width column tiles; zero dims are the empty
        // batch. Compare through to_bits so a −0.0/+0.0 swap would fail.
        let (m, k, n) = dims;
        let a_data = &pool[..m * k];
        let b_data = &pool[13 * 13..13 * 13 + k * n];
        let reference = |a: &[f64], b: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a[i * k + kk] * b[kk * n + j];
                    }
                    out[i * n + j] = acc;
                }
            }
            out
        };
        let expect = reference(a_data, b_data);
        let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        let t = Tape::new();
        // Plain matmul: A[m,k] @ B[k,n].
        let a = t.constant(Tensor::matrix(m, k, a_data.to_vec()));
        let b = t.constant(Tensor::matrix(k, n, b_data.to_vec()));
        prop_assert_eq!(bits(t.value(t.matmul(a, b)).data()), bits(&expect));
        // NT: A[m,k] @ (Bᵀ[n,k])ᵀ reads B transposed but must keep the same
        // ascending-k accumulation (the pack is a layout change only).
        let mut b_t = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                b_t[j * k + kk] = b_data[kk * n + j];
            }
        }
        let bt = t.constant(Tensor::matrix(n, k, b_t));
        prop_assert_eq!(bits(t.value(t.matmul_nt(a, bt)).data()), bits(&expect));
        // TN: (Aᵀ[k,m])ᵀ @ B[k,n].
        let mut a_t = vec![0.0; m * k];
        for i in 0..m {
            for kk in 0..k {
                a_t[kk * m + i] = a_data[i * k + kk];
            }
        }
        let at = t.constant(Tensor::matrix(k, m, a_t));
        prop_assert_eq!(bits(t.value(t.matmul_tn(at, b)).data()), bits(&expect));
    }

    #[test]
    fn bulk_unary_matches_singleton_evaluation_bitwise(
        data in prop::collection::vec(-4.0f64..4.0, 1..40)
    ) {
        // The bulk activation kernels process fixed-width lane blocks with a
        // scalar tail; every element must come out bit-identical to
        // evaluating that element alone (a length-1 tensor only ever takes
        // the remainder path). Random lengths 1..40 cover full blocks,
        // partial tails, and the degenerate single-lane case.
        let t = Tape::new();
        for kind in [Unary::Tanh, Unary::Sigmoid, Unary::Softplus, Unary::Relu, Unary::Relu6] {
            let v = t.constant(Tensor::vector(&data));
            let bulk = t.value(t.unary(kind, v));
            for (i, &x) in data.iter().enumerate() {
                let s = t.constant(Tensor::vector(&[x]));
                let solo = t.value(t.unary(kind, s));
                prop_assert_eq!(
                    bulk.data()[i].to_bits(),
                    solo.data()[0].to_bits(),
                    "{:?} lane {} of {}", kind, i, data.len()
                );
            }
            t.reset();
        }
    }

    #[test]
    fn affine_population_matches_per_genome_affine(
        x_data in prop::collection::vec(-1.5f64..1.5, 1..9),
        genome_pools in prop::collection::vec(
            prop::collection::vec(-1.5f64..1.5, 2..13), 0..5)
    ) {
        // The population-fused first layer must be bitwise indistinguishable
        // from running each genome's affine alone — values, gradients, and
        // the empty-population batch. Each genome's pool splits in half into
        // (w, b), so widths 1..6 vary per genome (ragged batch).
        let m = x_data.len();
        let genomes: Vec<(Vec<f64>, Vec<f64>)> = genome_pools
            .iter()
            .map(|p| {
                let n = p.len() / 2;
                (p[..n].to_vec(), p[n..2 * n].to_vec())
            })
            .collect();
        for act in [None, Some(Unary::Tanh)] {
            let t = Tape::new();
            let x = t.constant(Tensor::matrix(m, 1, x_data.clone()));
            let layers: Vec<_> = genomes
                .iter()
                .map(|(w, b)| {
                    (t.constant(Tensor::matrix(1, w.len(), w.clone())),
                     t.constant(Tensor::vector(b)))
                })
                .collect();
            let fused = t.affine_population(x, &layers, act);
            prop_assert_eq!(fused.len(), genomes.len());
            for (g, &(w, b)) in layers.iter().enumerate() {
                let solo = t.affine(x, w, b, act);
                let fv = t.value(fused[g]);
                let sv = t.value(solo);
                prop_assert_eq!(fv.shape(), sv.shape());
                for (a, c) in fv.data().iter().zip(sv.data()) {
                    prop_assert_eq!(a.to_bits(), c.to_bits(), "genome {} value", g);
                }
                let gf = t.grad(t.sum_all(t.square(fused[g])), &[x, w, b]);
                let gs = t.grad(t.sum_all(t.square(solo)), &[x, w, b]);
                for (vf, vs) in gf.iter().zip(gs.iter()) {
                    for (a, c) in t.value(*vf).data().iter().zip(t.value(*vs).data()) {
                        prop_assert_eq!(a.to_bits(), c.to_bits(), "genome {} grad", g);
                    }
                }
            }
        }
    }

    #[test]
    fn grad_values_matches_taped_grad_on_population_path(
        x_data in prop::collection::vec(-1.5f64..1.5, 1..7),
        genome_pools in prop::collection::vec(
            prop::collection::vec(-1.5f64..1.5, 2..11), 1..5)
    ) {
        // Extends the grad_values-vs-taped-grad bit-identity contract to
        // graphs containing population-fused affine nodes, including an
        // inner taped gradient (the force path) so the value-level backward
        // has to traverse adjoint nodes rooted at the fused layer.
        let m = x_data.len();
        let t = Tape::new();
        let x = t.constant(Tensor::matrix(m, 1, x_data));
        let layers: Vec<_> = genome_pools
            .iter()
            .map(|p| {
                let n = p.len() / 2;
                (t.constant(Tensor::matrix(1, n, p[..n].to_vec())),
                 t.constant(Tensor::vector(&p[n..2 * n])))
            })
            .collect();
        let fused = t.affine_population(x, &layers, Some(Unary::Tanh));
        let mut e = t.sum_all(fused[0]);
        for &h in &fused[1..] {
            e = t.add(e, t.sum_all(h));
        }
        let fx = t.grad(e, &[x])[0];
        let loss = t.add(t.sum_all(t.square(fx)), e);
        let mut wrt = vec![x];
        for &(w, b) in &layers {
            wrt.push(w);
            wrt.push(b);
        }
        let taped: Vec<Tensor> = t.grad(loss, &wrt).iter().map(|&g| t.value(g)).collect();
        let before = t.len();
        let values = t.grad_values(loss, &wrt);
        prop_assert_eq!(t.len(), before, "grad_values must not record nodes");
        for (a, b) in values.iter().zip(taped.iter()) {
            prop_assert_eq!(a.shape(), b.shape());
            for (va, vb) in a.data().iter().zip(b.data()) {
                prop_assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn add_bias_and_sum_rows_are_adjoint(
        m in prop::collection::vec(-2.0f64..2.0, 6),
        bias in prop::collection::vec(-2.0f64..2.0, 3)
    ) {
        // d(sum(M + 1·bᵀ))/db = column counts: each bias column contributes
        // once per row.
        let tape = Tape::new();
        let vm = tape.constant(Tensor::matrix(2, 3, m));
        let vb = tape.constant(Tensor::vector(&bias));
        let y = tape.sum_all(tape.add_bias(vm, vb));
        let g = tape.grad(y, &[vb])[0];
        for v in tape.value(g).data() {
            prop_assert!((v - 2.0).abs() < 1e-12);
        }
    }
}
