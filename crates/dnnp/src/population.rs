//! Population-level evaluation: train several genomes in lock-step,
//! sharing every weight-independent artifact their hyperparameters allow.
//!
//! The NSGA-II outer loop evaluates dozens of genomes per generation, and
//! many of them agree on the geometry-determining hyperparameters (`rcut`,
//! `rcut_smth`) while differing only in network shape or learning-rate
//! schedule. Training such genomes independently recomputes identical
//! descriptor statistics, per-frame neighbor caches, and validation
//! batches once per genome. [`train_population`] buckets jobs by a
//! geometry key, builds those artifacts once per bucket, interleaves the
//! members' training steps on one shared tape arena, and evaluates every
//! due validation row through a single fused first-layer sweep
//! ([`crate::model::forward_population`]).
//!
//! # Bit-identity contract
//!
//! `train_population(jobs, ...)` produces, for every job, a
//! [`TrainReport`] whose learning curve, trained weights, step counts, and
//! abort reason are **bit-identical** to running
//! [`crate::trainer::train_supervised`] on that job alone with
//! `StdRng::seed_from_u64(seed)`. This holds because:
//!
//! - every genome keeps its own rng stream, Adam state, batch
//!   compositions, and loss graph — training steps share only the tape
//!   *arena*, never values;
//! - the fused validation sweep batches genomes along the width of the
//!   first embedding layer, where the `[P,1]×[1,G·h₁]` matmul is a `k=1`
//!   product per element — no reduction is widened, so forward values
//!   match exactly;
//! - nothing is ever summed *across* genome lanes (that would reorder
//!   reductions; see `DESIGN.md` §10 for the signed-zero caveat on force
//!   adjoints, which RMSE squaring erases).
//!
//! The identity is enforced by this module's tests.

use std::collections::HashMap;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dphpo_autograd::Tape;
use dphpo_md::Dataset;

use crate::activation::Activation;
use crate::config::TrainConfig;
use crate::descriptor::FrameCache;
use crate::model::DnnpModel;
use crate::supervise::Supervision;
use crate::trainer::{PreparedBatch, TrainReport, TrainRun};

/// Hyperparameters that must match for two genomes to share a bucket.
///
/// `rcut`/`rcut_smth` are compared by bit pattern: they determine the
/// neighbor lists, descriptor statistics, and cached switching values, so
/// any difference means nothing is shareable. `h1` (first embedding
/// width) and the descriptor activation gate the fused first-layer sweep;
/// `num_steps`/`disp_freq`/`val_max_frames` keep the members' validation
/// schedules aligned so every due row lands in the same fused sweep.
#[derive(Clone, PartialEq, Eq, Hash)]
struct BucketKey {
    rcut_bits: u64,
    rcut_smth_bits: u64,
    h1: usize,
    desc_activation: Activation,
    num_steps: usize,
    disp_freq: usize,
    val_max_frames: usize,
}

impl BucketKey {
    fn of(config: &TrainConfig) -> BucketKey {
        BucketKey {
            rcut_bits: config.rcut.to_bits(),
            rcut_smth_bits: config.rcut_smth.to_bits(),
            h1: config.embedding_neurons.first().copied().unwrap_or(0),
            desc_activation: config.desc_activation,
            num_steps: config.num_steps,
            disp_freq: config.disp_freq,
            val_max_frames: config.val_max_frames,
        }
    }
}

/// Train every `(config, seed)` job, sharing descriptor caches, the
/// validation batch, the tape arena, and fused validation sweeps within
/// each geometry bucket. Reports come back in input order.
///
/// All jobs run under the one `sup`: cancellation stops the whole
/// population, and the deadline/sentinel probes fire per-run exactly as
/// they would sequentially.
pub fn train_population(
    jobs: &[(TrainConfig, u64)],
    train_ds: &Dataset,
    val_ds: &Dataset,
    sup: &Supervision<'_>,
) -> Result<Vec<TrainReport>, String> {
    for (config, _) in jobs {
        config.validate()?;
    }
    if val_ds.frames.is_empty() {
        return Err("empty validation dataset".into());
    }
    // Group job indices by bucket, preserving first-seen bucket order and
    // input order within each bucket.
    let mut order: Vec<BucketKey> = Vec::new();
    let mut buckets: HashMap<BucketKey, Vec<usize>> = HashMap::new();
    for (i, (config, _)) in jobs.iter().enumerate() {
        let key = BucketKey::of(config);
        let members = buckets.entry(key.clone()).or_default();
        if members.is_empty() {
            order.push(key);
        }
        members.push(i);
    }
    let mut reports: Vec<Option<TrainReport>> = (0..jobs.len()).map(|_| None).collect();
    for key in &order {
        let members = &buckets[key];
        for (&i, report) in members.iter().zip(run_bucket(jobs, members, train_ds, val_ds, sup)?)
        {
            reports[i] = Some(report);
        }
    }
    Ok(reports.into_iter().map(|r| r.expect("every job belongs to one bucket")).collect())
}

/// Train one bucket's members in lock-step on shared artifacts.
fn run_bucket<'a>(
    jobs: &'a [(TrainConfig, u64)],
    members: &[usize],
    train_ds: &'a Dataset,
    val_ds: &Dataset,
    sup: &'a Supervision<'a>,
) -> Result<Vec<TrainReport>, String> {
    // The first member builds everything weight-independent; the bucket
    // key guarantees the result is what every other member would have
    // computed for itself.
    let (config0, seed0) = &jobs[members[0]];
    let mut rng0 = StdRng::seed_from_u64(*seed0);
    let model0 = DnnpModel::new(config0.clone(), train_ds, &mut rng0)?;
    let stats = model0.stats.clone();
    let train_caches: Rc<Vec<FrameCache>> =
        Rc::new(train_ds.frames.iter().map(|f| model0.build_cache(&f.positions)).collect());
    let n_val = config0.val_max_frames.max(1).min(val_ds.frames.len());
    let val_indices: Vec<usize> = (0..n_val).collect();
    let val_caches: Vec<FrameCache> =
        val_ds.frames[..n_val].iter().map(|f| model0.build_cache(&f.positions)).collect();
    let val_batch = Rc::new(PreparedBatch::assemble(&model0, val_ds, &val_indices, val_caches));
    let tape = Rc::new(Tape::new());
    // Meter from the very first lease so the per-bucket summary below sees
    // the cold-start misses too (step_core would only enable it lazily).
    if sup.obs().is_some() {
        tape.set_alloc_metering(true);
    }

    // `rng0` has advanced exactly past model init, so handing it to
    // `with_parts` continues the stream at the batch-index draws — the
    // same position a solo `TrainRun::new` would be at.
    let mut runs: Vec<TrainRun<'a>> = Vec::with_capacity(members.len());
    runs.push(TrainRun::with_parts(
        config0,
        train_ds,
        &mut rng0,
        sup,
        model0,
        Rc::clone(&train_caches),
        Rc::clone(&val_batch),
        Rc::clone(&tape),
    )?);
    for &i in &members[1..] {
        let (config, seed) = &jobs[i];
        let mut rng = StdRng::seed_from_u64(*seed);
        let model = DnnpModel::with_stats(config.clone(), train_ds, stats.clone(), &mut rng)?;
        runs.push(TrainRun::with_parts(
            config,
            train_ds,
            &mut rng,
            sup,
            model,
            Rc::clone(&train_caches),
            Rc::clone(&val_batch),
            Rc::clone(&tape),
        )?);
    }

    // Lock-step training: each iteration runs one step of every member
    // still active, then evaluates all the validation rows that came due
    // through one fused population sweep.
    loop {
        let stepped: Vec<usize> = (0..runs.len()).filter(|&gi| runs[gi].is_active()).collect();
        if stepped.is_empty() {
            break;
        }
        let mut due: Vec<usize> = Vec::new();
        for &gi in &stepped {
            if runs[gi].step_core() {
                due.push(gi);
            }
        }
        if !due.is_empty() {
            let rmses = {
                let models: Vec<&DnnpModel> = due.iter().map(|&gi| runs[gi].model()).collect();
                val_batch.rmse_population(&models)
            };
            for (&gi, (rmse_e, rmse_f)) in due.iter().zip(rmses) {
                runs[gi].apply_val(rmse_e, rmse_f);
            }
        }
        for &gi in &stepped {
            runs[gi].advance();
        }
    }

    // Final validation rows for every member that completed its steps,
    // again through one fused sweep.
    let finals: Vec<usize> = (0..runs.len()).filter(|&gi| runs[gi].needs_final_row()).collect();
    let mut final_rmse: Vec<Option<(f64, f64)>> = vec![None; runs.len()];
    if !finals.is_empty() {
        let models: Vec<&DnnpModel> = finals.iter().map(|&gi| runs[gi].model()).collect();
        for (&gi, rf) in finals.iter().zip(val_batch.rmse_population(&models)) {
            final_rmse[gi] = Some(rf);
        }
    }
    // Per-bucket allocation summary: one instant event showing how the
    // members shared the fused arena (cumulative over the bucket's life).
    if let Some(rec) = sup.obs() {
        let stats = tape.alloc_stats();
        let mut event =
            dphpo_obs::Event::instant(dphpo_obs::names::TAPE_BUCKET, dphpo_obs::cats::TRAIN, sup.span);
        event.args = vec![
            ("members", members.len() as f64),
            ("pool_hits", stats.pool_hits as f64),
            ("pool_misses", stats.pool_misses as f64),
            ("leases", stats.leases as f64),
            ("fresh_bytes", stats.fresh_bytes as f64),
            ("leased_bytes_hw", stats.leased_bytes_hw as f64),
            ("retained_bytes", tape.retained_bytes() as f64),
        ];
        rec.record(event);
    }

    Ok(runs.into_iter().zip(final_rmse).map(|(run, rf)| run.finish_with(rf)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_supervised;
    use dphpo_md::generate::{generate_dataset, GenConfig};

    fn tiny_data(seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 10;
        let ds = generate_dataset(&gen, &mut rng);
        ds.split(0.25, &mut rng)
    }

    fn tiny_config() -> TrainConfig {
        TrainConfig {
            start_lr: 0.005,
            stop_lr: 1e-4,
            rcut: 5.0,
            rcut_smth: 2.0,
            embedding_neurons: vec![6, 4],
            fitting_neurons: vec![8, 8],
            num_steps: 60,
            batch_per_worker: 1,
            n_workers: 2,
            disp_freq: 20,
            val_max_frames: 2,
            ..TrainConfig::default()
        }
    }

    fn assert_reports_identical(solo: &TrainReport, pop: &TrainReport, label: &str) {
        assert_eq!(solo.steps_completed, pop.steps_completed, "{label}: steps_completed");
        assert_eq!(solo.diverged, pop.diverged, "{label}: diverged");
        // Debug formatting compares abort variants including NaN losses.
        assert_eq!(
            format!("{:?}", solo.abort),
            format!("{:?}", pop.abort),
            "{label}: abort reason"
        );
        assert_eq!(solo.lcurve.rows().len(), pop.lcurve.rows().len(), "{label}: lcurve length");
        for (s, p) in solo.lcurve.rows().iter().zip(pop.lcurve.rows()) {
            assert_eq!(s.step, p.step, "{label}: lcurve step");
            for (name, a, b) in [
                ("rmse_e_val", s.rmse_e_val, p.rmse_e_val),
                ("rmse_e_trn", s.rmse_e_trn, p.rmse_e_trn),
                ("rmse_f_val", s.rmse_f_val, p.rmse_f_val),
                ("rmse_f_trn", s.rmse_f_trn, p.rmse_f_trn),
                ("lr", s.lr, p.lr),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label}: lcurve step {} field {name}: {a} vs {b}",
                    s.step
                );
            }
        }
        for (i, (ws, wp)) in
            solo.model.params.flat().iter().zip(pop.model.params.flat()).enumerate()
        {
            assert_eq!(ws.shape(), wp.shape(), "{label}: param {i} shape");
            for (a, b) in ws.data().iter().zip(wp.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{label}: param {i}: {a} vs {b}");
            }
        }
    }

    /// The headline contract: a population run — two genomes fused in one
    /// bucket (different deeper layers and learning rates), one genome in
    /// its own bucket, and one diverging member — is bit-identical to the
    /// same jobs trained one at a time.
    #[test]
    fn population_training_is_bit_identical_to_sequential() {
        let (train_ds, val_ds) = tiny_data(3);
        let jobs: Vec<(TrainConfig, u64)> = vec![
            (tiny_config(), 11),
            // Same bucket as job 0: geometry and first embedding layer
            // match; everything downstream differs.
            (
                TrainConfig {
                    embedding_neurons: vec![6, 3],
                    fitting_neurons: vec![5, 7],
                    start_lr: 0.003,
                    ..tiny_config()
                },
                22,
            ),
            // Different rcut: its own bucket.
            (TrainConfig { rcut: 6.0, ..tiny_config() }, 33),
            // Same bucket as jobs 0/1, but diverges and aborts early.
            (TrainConfig { start_lr: 1e100, stop_lr: 1e99, ..tiny_config() }, 44),
        ];

        let solo: Vec<TrainReport> = jobs
            .iter()
            .map(|(config, seed)| {
                let mut rng = StdRng::seed_from_u64(*seed);
                train_supervised(config, &train_ds, &val_ds, &mut rng, &Supervision::none())
                    .unwrap()
            })
            .collect();
        let pop =
            train_population(&jobs, &train_ds, &val_ds, &Supervision::none()).unwrap();

        assert_eq!(pop.len(), jobs.len());
        for (i, (s, p)) in solo.iter().zip(&pop).enumerate() {
            assert_reports_identical(s, p, &format!("job {i}"));
        }
        assert!(pop[3].diverged, "the 1e100-lr member must diverge in population mode too");
        assert!(!pop[0].diverged && !pop[1].diverged && !pop[2].diverged);
    }

    /// A single-genome population goes through the same fused sweep code
    /// path and must match its solo run exactly.
    #[test]
    fn population_of_one_matches_solo_training() {
        let (train_ds, val_ds) = tiny_data(7);
        let jobs = vec![(tiny_config(), 5)];
        let mut rng = StdRng::seed_from_u64(5);
        let solo =
            train_supervised(&jobs[0].0, &train_ds, &val_ds, &mut rng, &Supervision::none())
                .unwrap();
        let pop = train_population(&jobs, &train_ds, &val_ds, &Supervision::none()).unwrap();
        assert_reports_identical(&solo, &pop[0], "solo bucket");
    }

    #[test]
    fn invalid_member_config_rejects_the_whole_population() {
        let (train_ds, val_ds) = tiny_data(9);
        let jobs =
            vec![(tiny_config(), 1), (TrainConfig { rcut: -1.0, ..tiny_config() }, 2)];
        assert!(train_population(&jobs, &train_ds, &val_ds, &Supervision::none()).is_err());
    }
}
