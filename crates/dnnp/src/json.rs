//! A minimal JSON value model, parser, and writer.
//!
//! The paper's evaluation workflow (§2.2.4) materialises every individual's
//! hyperparameters into a DeePMD `input.json` via template substitution and
//! reads training output back from disk. To keep that workflow a faithful,
//! self-contained artifact, this substrate ships its own small JSON
//! implementation instead of pulling a serialisation framework into the
//! training path (see DESIGN.md §5).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a `BTreeMap` so output ordering is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Nested lookup through objects, e.g. `at(&["learning_rate","start_lr"])`.
    pub fn at(&self, path: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience constructor for objects.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render on a single line with no whitespace — the framing used for
    /// JSONL artifacts such as the experiment journal, where one record
    /// must occupy exactly one line.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// A stable 64-bit content hash (FNV-1a over the canonical rendering).
    ///
    /// Object keys are sorted (`BTreeMap`) and numbers render via Rust's
    /// shortest-round-trip formatting, so the hash depends only on the JSON
    /// *value*, never on insertion order or the process that produced it.
    /// The experiment journal stores this hash of the campaign
    /// configuration in its header and refuses to resume under a different
    /// configuration.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_string().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(p.pos, "trailing characters"));
        }
        Ok(v)
    }
}

/// Parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    fn new(pos: usize, message: &str) -> Self {
        JsonError { pos, message: message.to_string() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(self.pos, &format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::new(self.pos, &format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(JsonError::new(self.pos, "unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| {
                        JsonError::new(self.pos, "unterminated escape")
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(JsonError::new(self.pos, "bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| JsonError::new(self.pos, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(JsonError::new(self.pos, "unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a run of plain UTF-8 bytes.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| JsonError::new(start, "invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError::new(start, "invalid number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(JsonError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        f.write_str(&out)
    }
}

impl Json {
    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        let pad_in = "    ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-3.5e-2").unwrap(), Json::Number(-0.035));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"learning_rate": {"start_lr": 0.001, "stop_lr": 3.51e-8},
                      "training": {"numb_steps": 40000},
                      "tags": ["a", "b"], "flag": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.at(&["learning_rate", "start_lr"]).unwrap().as_f64(), Some(0.001));
        assert_eq!(v.at(&["training", "numb_steps"]).unwrap().as_f64(), Some(40000.0));
        assert_eq!(
            v.get("tags").unwrap(),
            &Json::Array(vec![Json::String("a".into()), Json::String("b".into())])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::String("a\"b\\c\nd\te".into());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(Json::parse(r#""å""#).unwrap(), Json::String("å".into()));
    }

    #[test]
    fn round_trips_pretty_output() {
        let v = Json::object(vec![
            ("model", Json::object(vec![
                ("rcut", Json::Number(9.5)),
                ("rcut_smth", Json::Number(2.42)),
                ("activation_function", Json::String("tanh".into())),
            ])),
            ("steps", Json::Number(40000.0)),
            ("empty_list", Json::Array(vec![])),
            ("nothing", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.pos, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Number(40000.0).to_string(), "40000");
        assert_eq!(Json::Number(0.01).to_string(), "0.01");
    }

    #[test]
    fn compact_rendering_is_single_line_and_round_trips() {
        let v = Json::object(vec![
            ("a", Json::Array(vec![Json::Number(1.0), Json::Null, Json::Bool(false)])),
            ("s", Json::String("line\nbreak".into())),
            ("n", Json::Number(0.0016)),
        ]);
        let compact = v.to_compact();
        assert!(!compact.contains('\n'), "compact output must be one line: {compact}");
        assert_eq!(Json::parse(&compact).unwrap(), v);
    }

    #[test]
    fn stable_hash_tracks_value_not_construction_order() {
        let a = Json::object(vec![("x", Json::Number(1.0)), ("y", Json::Bool(true))]);
        let b = Json::object(vec![("y", Json::Bool(true)), ("x", Json::Number(1.0))]);
        assert_eq!(a.stable_hash(), b.stable_hash());
        let c = Json::object(vec![("x", Json::Number(2.0)), ("y", Json::Bool(true))]);
        assert_ne!(a.stable_hash(), c.stable_hash());
        // Survives a serialisation round trip.
        assert_eq!(Json::parse(&a.to_string()).unwrap().stable_hash(), a.stable_hash());
    }
}
