//! Training configuration mirroring the DeePMD-kit `input.json` fields the
//! paper tunes, plus the fixed settings of §2.1.2.

use crate::activation::Activation;
use crate::json::Json;

/// Learning-rate scaling scheme for distributed data-parallel training,
/// in the paper's decoding order `{linear, sqrt, none}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LrScaling {
    /// Multiply the learning rate by the worker count (the DeePMD default).
    Linear,
    /// Multiply by √workers.
    Sqrt,
    /// No scaling.
    None,
}

impl LrScaling {
    /// Decode-order list (§2.2.2: `floor(gene) % 3`).
    pub const ALL: [LrScaling; 3] = [LrScaling::Linear, LrScaling::Sqrt, LrScaling::None];

    /// DeePMD-style name.
    pub fn name(&self) -> &'static str {
        match self {
            LrScaling::Linear => "linear",
            LrScaling::Sqrt => "sqrt",
            LrScaling::None => "none",
        }
    }

    /// Inverse of [`LrScaling::name`].
    pub fn from_name(name: &str) -> Option<LrScaling> {
        LrScaling::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The multiplier applied to the learning rate for `workers` workers.
    pub fn factor(&self, workers: usize) -> f64 {
        match self {
            LrScaling::Linear => workers as f64,
            LrScaling::Sqrt => (workers as f64).sqrt(),
            LrScaling::None => 1.0,
        }
    }
}

/// Complete training configuration.
///
/// The first seven fields are the EA-tuned hyperparameters; the rest are
/// the fixed settings of the paper's §2.1.2 (network sizes, loss
/// prefactors) at this reproduction's reduced scale, plus run-control
/// parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Start learning rate (tuned; paper range (3.51e-8, 0.01)).
    pub start_lr: f64,
    /// Stop learning rate (tuned; paper range (3.51e-8, 1e-4)).
    pub stop_lr: f64,
    /// Hard descriptor radial cutoff, Å (tuned; paper range (6, 12)).
    pub rcut: f64,
    /// Switching-function onset radius, Å (tuned; paper range (2, 6)).
    pub rcut_smth: f64,
    /// Learning-rate scaling by worker (tuned; {linear, sqrt, none}).
    pub scale_by_worker: LrScaling,
    /// Descriptor (embedding) network activation (tuned).
    pub desc_activation: Activation,
    /// Fitting network activation (tuned).
    pub fitting_activation: Activation,

    /// Embedding net hidden widths, ending in the descriptor channel count
    /// M (paper: {25, 50, 100}; reduced here).
    pub embedding_neurons: Vec<usize>,
    /// Fitting net hidden widths (paper: {240, 240, 240}; reduced here).
    pub fitting_neurons: Vec<usize>,
    /// Loss prefactors (paper §2.1.2: 0.02, 1000, 1, 1).
    pub start_pref_e: f64,
    /// Force-loss start prefactor.
    pub start_pref_f: f64,
    /// Energy-loss limit prefactor.
    pub limit_pref_e: f64,
    /// Force-loss limit prefactor.
    pub limit_pref_f: f64,

    /// Training steps (paper: 40,000; reduced here).
    pub num_steps: usize,
    /// Frames per worker per step.
    pub batch_per_worker: usize,
    /// Data-parallel worker count (paper: 6 GPUs per Summit node).
    pub n_workers: usize,
    /// Steps between lcurve rows.
    pub disp_freq: usize,
    /// Maximum validation frames evaluated per lcurve row (cost control).
    pub val_max_frames: usize,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            start_lr: 0.001,
            stop_lr: 1e-8,
            rcut: 6.0,
            rcut_smth: 0.5,
            scale_by_worker: LrScaling::Linear,
            desc_activation: Activation::Tanh,
            fitting_activation: Activation::Tanh,
            embedding_neurons: vec![6, 4],
            fitting_neurons: vec![16, 16],
            start_pref_e: 0.02,
            start_pref_f: 1000.0,
            limit_pref_e: 1.0,
            limit_pref_f: 1.0,
            num_steps: 300,
            batch_per_worker: 1,
            n_workers: 6,
            disp_freq: 50,
            val_max_frames: 8,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// The paper's full-scale fixed settings (documented, not run here:
    /// embedding {25,50,100}, fitting {240,240,240}, 40k steps).
    pub fn paper_scale() -> Self {
        TrainConfig {
            embedding_neurons: vec![25, 50, 100],
            fitting_neurons: vec![240, 240, 240],
            num_steps: 40_000,
            ..TrainConfig::default()
        }
    }

    /// Consistency checks; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.start_lr > 0.0 && self.start_lr.is_finite()) {
            return Err(format!("start_lr {} must be positive", self.start_lr));
        }
        if !(self.stop_lr > 0.0 && self.stop_lr.is_finite()) {
            return Err(format!("stop_lr {} must be positive", self.stop_lr));
        }
        if self.rcut <= 0.0 {
            return Err(format!("rcut {} must be positive", self.rcut));
        }
        if self.rcut_smth >= self.rcut {
            return Err(format!(
                "rcut_smth {} must lie below rcut {}",
                self.rcut_smth, self.rcut
            ));
        }
        if self.embedding_neurons.is_empty() || self.fitting_neurons.is_empty() {
            return Err("network sizes must be non-empty".into());
        }
        if self.num_steps == 0 || self.n_workers == 0 || self.batch_per_worker == 0 {
            return Err("steps, workers, and batch must be positive".into());
        }
        Ok(())
    }

    /// Stable 64-bit fingerprint of this configuration, via the canonical
    /// `input.json` rendering. Two configs hash equal iff they would write
    /// identical `input.json` artifacts; the experiment journal uses this
    /// to reject resumption under a changed campaign configuration.
    pub fn config_hash(&self) -> u64 {
        self.to_input_json().stable_hash()
    }

    /// Serialise to a DeePMD-shaped `input.json` document.
    pub fn to_input_json(&self) -> Json {
        let neurons = |ns: &[usize]| {
            Json::Array(ns.iter().map(|&n| Json::Number(n as f64)).collect())
        };
        Json::object(vec![
            (
                "model",
                Json::object(vec![
                    (
                        "descriptor",
                        Json::object(vec![
                            ("type", Json::String("se_e2_r".into())),
                            ("rcut", Json::Number(self.rcut)),
                            ("rcut_smth", Json::Number(self.rcut_smth)),
                            ("neuron", neurons(&self.embedding_neurons)),
                            (
                                "activation_function",
                                Json::String(self.desc_activation.name().into()),
                            ),
                        ]),
                    ),
                    (
                        "fitting_net",
                        Json::object(vec![
                            ("neuron", neurons(&self.fitting_neurons)),
                            (
                                "activation_function",
                                Json::String(self.fitting_activation.name().into()),
                            ),
                        ]),
                    ),
                ]),
            ),
            (
                "learning_rate",
                Json::object(vec![
                    ("type", Json::String("exp".into())),
                    ("start_lr", Json::Number(self.start_lr)),
                    ("stop_lr", Json::Number(self.stop_lr)),
                    (
                        "scale_by_worker",
                        Json::String(self.scale_by_worker.name().into()),
                    ),
                ]),
            ),
            (
                "loss",
                Json::object(vec![
                    ("start_pref_e", Json::Number(self.start_pref_e)),
                    ("limit_pref_e", Json::Number(self.limit_pref_e)),
                    ("start_pref_f", Json::Number(self.start_pref_f)),
                    ("limit_pref_f", Json::Number(self.limit_pref_f)),
                ]),
            ),
            (
                "training",
                Json::object(vec![
                    ("numb_steps", Json::Number(self.num_steps as f64)),
                    ("batch_size", Json::Number(self.batch_per_worker as f64)),
                    ("n_workers", Json::Number(self.n_workers as f64)),
                    ("disp_freq", Json::Number(self.disp_freq as f64)),
                    ("val_max_frames", Json::Number(self.val_max_frames as f64)),
                    ("seed", Json::Number(self.seed as f64)),
                ]),
            ),
        ])
    }

    /// Parse a configuration back from an `input.json` document (the
    /// inverse of [`TrainConfig::to_input_json`], used by the evaluation
    /// workflow after template substitution).
    pub fn from_input_json(doc: &Json) -> Result<TrainConfig, String> {
        let num = |path: &[&str]| -> Result<f64, String> {
            doc.at(path)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field {}", path.join(".")))
        };
        let text = |path: &[&str]| -> Result<String, String> {
            doc.at(path)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {}", path.join(".")))
        };
        let neuron_list = |path: &[&str]| -> Result<Vec<usize>, String> {
            match doc.at(path) {
                Some(Json::Array(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .map(|f| f as usize)
                            .ok_or_else(|| format!("bad neuron entry in {}", path.join(".")))
                    })
                    .collect(),
                _ => Err(format!("missing array {}", path.join("."))),
            }
        };

        let desc_name = text(&["model", "descriptor", "activation_function"])?;
        let fit_name = text(&["model", "fitting_net", "activation_function"])?;
        let scale_name = text(&["learning_rate", "scale_by_worker"])?;
        let config = TrainConfig {
            start_lr: num(&["learning_rate", "start_lr"])?,
            stop_lr: num(&["learning_rate", "stop_lr"])?,
            rcut: num(&["model", "descriptor", "rcut"])?,
            rcut_smth: num(&["model", "descriptor", "rcut_smth"])?,
            scale_by_worker: LrScaling::from_name(&scale_name)
                .ok_or_else(|| format!("unknown scale_by_worker '{scale_name}'"))?,
            desc_activation: Activation::from_name(&desc_name)
                .ok_or_else(|| format!("unknown activation '{desc_name}'"))?,
            fitting_activation: Activation::from_name(&fit_name)
                .ok_or_else(|| format!("unknown activation '{fit_name}'"))?,
            embedding_neurons: neuron_list(&["model", "descriptor", "neuron"])?,
            fitting_neurons: neuron_list(&["model", "fitting_net", "neuron"])?,
            start_pref_e: num(&["loss", "start_pref_e"])?,
            start_pref_f: num(&["loss", "start_pref_f"])?,
            limit_pref_e: num(&["loss", "limit_pref_e"])?,
            limit_pref_f: num(&["loss", "limit_pref_f"])?,
            num_steps: num(&["training", "numb_steps"])? as usize,
            batch_per_worker: num(&["training", "batch_size"])? as usize,
            n_workers: num(&["training", "n_workers"])? as usize,
            disp_freq: num(&["training", "disp_freq"])? as usize,
            val_max_frames: num(&["training", "val_max_frames"])? as usize,
            seed: num(&["training", "seed"])? as u64,
        };
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_factors() {
        assert_eq!(LrScaling::Linear.factor(6), 6.0);
        assert!((LrScaling::Sqrt.factor(6) - 6f64.sqrt()).abs() < 1e-12);
        assert_eq!(LrScaling::None.factor(6), 1.0);
        assert_eq!(LrScaling::Linear.factor(1), 1.0);
    }

    #[test]
    fn scaling_names_round_trip() {
        for s in LrScaling::ALL {
            assert_eq!(LrScaling::from_name(s.name()), Some(s));
        }
        assert_eq!(LrScaling::from_name("exp"), None);
    }

    #[test]
    fn default_config_is_valid_except_paper_default_smoothing() {
        // The DeePMD default rcut_smth = 0.5 is valid (just below rcut).
        assert!(TrainConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_inverted_cutoffs() {
        let config = TrainConfig { rcut: 6.0, rcut_smth: 7.0, ..TrainConfig::default() };
        assert!(config.validate().unwrap_err().contains("rcut_smth"));
    }

    #[test]
    fn validation_catches_bad_lr() {
        let config = TrainConfig { start_lr: 0.0, ..TrainConfig::default() };
        assert!(config.validate().is_err());
        let config = TrainConfig { stop_lr: -1.0, ..TrainConfig::default() };
        assert!(config.validate().is_err());
    }

    #[test]
    fn input_json_round_trips() {
        let config = TrainConfig {
            start_lr: 0.0047,
            stop_lr: 1e-4,
            rcut: 11.32,
            rcut_smth: 2.42,
            scale_by_worker: LrScaling::None,
            desc_activation: Activation::Tanh,
            fitting_activation: Activation::Softplus,
            seed: 42,
            ..TrainConfig::default()
        };
        let doc = config.to_input_json();
        let text = doc.to_string();
        let parsed = Json::parse(&text).unwrap();
        let restored = TrainConfig::from_input_json(&parsed).unwrap();
        assert_eq!(restored, config);
    }

    #[test]
    fn paper_scale_matches_published_settings() {
        let c = TrainConfig::paper_scale();
        assert_eq!(c.embedding_neurons, vec![25, 50, 100]);
        assert_eq!(c.fitting_neurons, vec![240, 240, 240]);
        assert_eq!(c.num_steps, 40_000);
        assert_eq!(c.start_pref_e, 0.02);
        assert_eq!(c.start_pref_f, 1000.0);
        assert_eq!(c.limit_pref_e, 1.0);
        assert_eq!(c.limit_pref_f, 1.0);
        assert_eq!(c.n_workers, 6);
    }

    #[test]
    fn from_input_json_reports_missing_fields() {
        let doc = Json::parse(r#"{"model": {}}"#).unwrap();
        let err = TrainConfig::from_input_json(&doc).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
