//! Model checkpointing: §2.2.4 notes that "successful DeePMD training
//! would produce a model"; this module makes that artifact real — a JSON
//! document holding the configuration, descriptor statistics, and every
//! weight, from which an identical [`DnnpModel`] can be restored.

use dphpo_autograd::{Shape, Tensor};
use dphpo_md::{Cell, Species};

use crate::config::TrainConfig;
use crate::descriptor::DescriptorStats;
use crate::json::Json;
use crate::model::{DnnpModel, LinearLayer, ModelParams};

fn tensor_to_json(t: &Tensor) -> Json {
    let shape = match t.shape() {
        Shape::D1(n) => vec![Json::Number(n as f64)],
        Shape::D2(r, c) => vec![Json::Number(r as f64), Json::Number(c as f64)],
    };
    Json::object(vec![
        ("shape", Json::Array(shape)),
        (
            "data",
            Json::Array(t.data().iter().map(|&v| Json::Number(v)).collect()),
        ),
    ])
}

fn tensor_from_json(doc: &Json) -> Result<Tensor, String> {
    let dims: Vec<usize> = match doc.get("shape") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| v.as_f64().map(|f| f as usize).ok_or("bad shape entry".to_string()))
            .collect::<Result<_, _>>()?,
        _ => return Err("missing tensor shape".into()),
    };
    let data: Vec<f64> = match doc.get("data") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| v.as_f64().ok_or("bad data entry".to_string()))
            .collect::<Result<_, _>>()?,
        _ => return Err("missing tensor data".into()),
    };
    let shape = match dims.as_slice() {
        [n] => Shape::D1(*n),
        [r, c] => Shape::D2(*r, *c),
        _ => return Err(format!("unsupported tensor rank {}", dims.len())),
    };
    if shape.len() != data.len() {
        return Err("tensor shape/data length mismatch".into());
    }
    Ok(Tensor::new(shape, data))
}

fn vec_f64_json(v: &[f64]) -> Json {
    Json::Array(v.iter().map(|&x| Json::Number(x)).collect())
}

fn vec_f64_from(doc: Option<&Json>, what: &str) -> Result<Vec<f64>, String> {
    match doc {
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| v.as_f64().ok_or(format!("bad {what} entry")))
            .collect(),
        _ => Err(format!("missing {what}")),
    }
}

/// Serialise a trained model to a JSON checkpoint document.
pub fn save_model(model: &DnnpModel) -> Json {
    let layer = |l: &LinearLayer| {
        Json::object(vec![("w", tensor_to_json(&l.w)), ("b", tensor_to_json(&l.b))])
    };
    Json::object(vec![
        ("format", Json::String("dphpo-dnnp-checkpoint-v1".into())),
        ("input", model.config.to_input_json()),
        (
            "stats",
            Json::object(vec![
                ("davg", vec_f64_json(&model.stats.davg)),
                ("dstd", vec_f64_json(&model.stats.dstd)),
                ("avg_neighbors", vec_f64_json(&model.stats.avg_neighbors)),
            ]),
        ),
        (
            "system",
            Json::object(vec![
                ("box_len", Json::Number(model.cell.length())),
                (
                    "species",
                    Json::Array(
                        model
                            .species_idx
                            .iter()
                            .map(|&i| Json::String(Species::ALL[i].index().to_string()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "params",
            Json::object(vec![
                (
                    "embeddings",
                    Json::Array(
                        model
                            .params
                            .embeddings
                            .iter()
                            .map(|net| Json::Array(net.iter().map(layer).collect()))
                            .collect(),
                    ),
                ),
                (
                    "fit_first",
                    Json::Array(model.params.fit_first.iter().map(tensor_to_json).collect()),
                ),
                ("fit_onehot", tensor_to_json(&model.params.fit_onehot)),
                ("fit_b0", tensor_to_json(&model.params.fit_b0)),
                (
                    "fit_rest",
                    Json::Array(model.params.fit_rest.iter().map(layer).collect()),
                ),
                ("energy_bias", tensor_to_json(&model.params.energy_bias)),
            ]),
        ),
    ])
}

/// Restore a model from a checkpoint document.
pub fn load_model(doc: &Json) -> Result<DnnpModel, String> {
    if doc.get("format").and_then(Json::as_str) != Some("dphpo-dnnp-checkpoint-v1") {
        return Err("not a dphpo-dnnp checkpoint".into());
    }
    let config = TrainConfig::from_input_json(
        doc.get("input").ok_or("missing input section")?,
    )?;
    let stats = DescriptorStats {
        davg: vec_f64_from(doc.at(&["stats", "davg"]), "davg")?,
        dstd: vec_f64_from(doc.at(&["stats", "dstd"]), "dstd")?,
        avg_neighbors: vec_f64_from(doc.at(&["stats", "avg_neighbors"]), "avg_neighbors")?,
    };
    let box_len = doc
        .at(&["system", "box_len"])
        .and_then(Json::as_f64)
        .ok_or("missing box_len")?;
    let species_idx: Vec<usize> = match doc.at(&["system", "species"]) {
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_str()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or("bad species entry".to_string())
            })
            .collect::<Result<_, _>>()?,
        _ => return Err("missing species".into()),
    };
    let n_species = species_idx.iter().copied().max().unwrap_or(0) + 1;

    let layer_from = |doc: &Json| -> Result<LinearLayer, String> {
        Ok(LinearLayer {
            w: tensor_from_json(doc.get("w").ok_or("missing layer w")?)?,
            b: tensor_from_json(doc.get("b").ok_or("missing layer b")?)?,
        })
    };
    let embeddings = match doc.at(&["params", "embeddings"]) {
        Some(Json::Array(nets)) => nets
            .iter()
            .map(|net| match net {
                Json::Array(layers) => layers.iter().map(layer_from).collect(),
                _ => Err("bad embedding net".to_string()),
            })
            .collect::<Result<Vec<Vec<LinearLayer>>, _>>()?,
        _ => return Err("missing embeddings".into()),
    };
    let fit_first = match doc.at(&["params", "fit_first"]) {
        Some(Json::Array(items)) => items
            .iter()
            .map(tensor_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("missing fit_first".into()),
    };
    let fit_rest = match doc.at(&["params", "fit_rest"]) {
        Some(Json::Array(items)) => items
            .iter()
            .map(layer_from)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("missing fit_rest".into()),
    };
    let params = ModelParams {
        embeddings,
        fit_first,
        fit_onehot: tensor_from_json(
            doc.at(&["params", "fit_onehot"]).ok_or("missing fit_onehot")?,
        )?,
        fit_b0: tensor_from_json(doc.at(&["params", "fit_b0"]).ok_or("missing fit_b0")?)?,
        fit_rest,
        energy_bias: tensor_from_json(
            doc.at(&["params", "energy_bias"]).ok_or("missing energy_bias")?,
        )?,
    };

    let n = species_idx.len();
    let mut onehot = Tensor::zeros(Shape::D2(n, n_species));
    for (i, &t) in species_idx.iter().enumerate() {
        onehot.data_mut()[i * n_species + t] = 1.0;
    }
    Ok(DnnpModel {
        config,
        params,
        stats,
        species_idx,
        n_species,
        onehot,
        cell: Cell::cubic(box_len),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_md::generate::{generate_dataset, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_and_frame() -> (DnnpModel, Vec<[f64; 3]>) {
        let mut rng = StdRng::seed_from_u64(41);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 3;
        let ds = generate_dataset(&gen, &mut rng);
        let config = TrainConfig {
            rcut: 5.0,
            rcut_smth: 2.0,
            embedding_neurons: vec![5, 4],
            fitting_neurons: vec![7],
            ..TrainConfig::default()
        };
        let model = DnnpModel::new(config, &ds, &mut rng).unwrap();
        (model, ds.frames[0].positions.clone())
    }

    #[test]
    fn checkpoint_round_trips_predictions_exactly() {
        let (model, positions) = model_and_frame();
        let doc = save_model(&model);
        let text = doc.to_string();
        let restored = load_model(&Json::parse(&text).unwrap()).unwrap();
        let (e1, f1) = model.predict(&positions);
        let (e2, f2) = restored.predict(&positions);
        assert!((e1 - e2).abs() < 1e-9, "energy drifted through checkpoint");
        for (a, b) in f1.iter().zip(f2.iter()) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-9);
            }
        }
        assert_eq!(restored.config, model.config);
        assert_eq!(restored.species_idx, model.species_idx);
    }

    #[test]
    fn wrong_format_rejected() {
        assert!(load_model(&Json::parse("{\"format\": \"other\"}").unwrap()).is_err());
        assert!(load_model(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let (model, _) = model_and_frame();
        let doc = save_model(&model);
        // Drop the params section.
        if let Json::Object(mut map) = doc {
            map.remove("params");
            assert!(load_model(&Json::Object(map)).is_err());
        } else {
            panic!("checkpoint must be an object");
        }
    }
}
