//! The training loop: Adam optimisation of the prefactor-weighted
//! energy+force loss with exponential LR decay and simulated 6-way
//! synchronous data parallelism (gradient averaging across worker shards,
//! exactly what Horovod does for DeePMD on one Summit node).

use rand::Rng;

use dphpo_autograd::{Shape, Tape, Tensor};
use dphpo_md::Dataset;

use std::collections::HashMap;
use std::rc::Rc;

use crate::config::TrainConfig;
use crate::descriptor::{merge_frame_caches, BatchCache, FrameCache};
use crate::lcurve::{Lcurve, LcurveRow};
use crate::loss::PrefactorSchedule;
use crate::lr::LrSchedule;
use crate::model::{forward_cached, DnnpModel, ModelParams};
use crate::supervise::{AbortReason, Supervision};
use dphpo_obs::{cats, names, Event, When};

/// Adam optimiser state (DeePMD's optimiser; β₁ 0.9, β₂ 0.999, ε 1e-8).
pub struct Adam {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: usize,
    beta1: f64,
    beta2: f64,
    eps: f64,
}

impl Adam {
    /// Fresh state matching the given parameter shapes.
    pub fn new(shapes: &[Shape]) -> Self {
        Adam {
            m: shapes.iter().map(|&s| Tensor::zeros(s)).collect(),
            v: shapes.iter().map(|&s| Tensor::zeros(s)).collect(),
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Apply one update with the given learning rate.
    pub fn step(&mut self, params: &mut ModelParams, grads: &[Tensor], lr: f64) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((target, grad), (m, v)) in params
            .flat_mut()
            .into_iter()
            .zip(grads.iter())
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let td = target.data_mut();
            let md = m.data_mut();
            let vd = v.data_mut();
            let gd = grad.data();
            for i in 0..td.len() {
                md[i] = self.beta1 * md[i] + (1.0 - self.beta1) * gd[i];
                vd[i] = self.beta2 * vd[i] + (1.0 - self.beta2) * gd[i] * gd[i];
                let mhat = md[i] / bc1;
                let vhat = vd[i] / bc2;
                td[i] -= lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Tile a one-frame one-hot matrix `[n, S]` into `[B·n, S]`.
fn tile_onehot(onehot: &Tensor, batch: usize) -> Tensor {
    let rows = onehot.shape().rows();
    let cols = onehot.shape().cols();
    let mut data = Vec::with_capacity(batch * rows * cols);
    for _ in 0..batch {
        data.extend_from_slice(onehot.data());
    }
    Tensor::matrix(batch * rows, cols, data)
}

/// A fixed set of frames assembled into one merged batch graph input, used
/// for the validation RMSE rows (one tape per evaluation instead of one
/// per frame).
pub(crate) struct PreparedBatch {
    merged: FrameCache,
    onehot: Tensor,
    frame_ids: Rc<[usize]>,
    energies: Vec<f64>,
    forces_flat: Vec<f64>,
    n_frames: usize,
    n_atoms: usize,
    /// Persistent evaluation tape — reset after each RMSE so repeated
    /// validation rows reuse the same arena.
    tape: Tape,
}

impl PreparedBatch {
    pub(crate) fn assemble(
        model: &DnnpModel,
        dataset: &Dataset,
        indices: &[usize],
        caches: Vec<FrameCache>,
    ) -> Self {
        let n_atoms = dataset.n_atoms();
        let refs: Vec<&FrameCache> = caches.iter().collect();
        let merged = merge_frame_caches(&refs);
        let frame_ids: Rc<[usize]> = indices
            .iter()
            .enumerate()
            .flat_map(|(b, _)| std::iter::repeat_n(b, n_atoms))
            .collect::<Vec<usize>>()
            .into();
        PreparedBatch {
            merged,
            onehot: tile_onehot(&model.onehot, indices.len()),
            frame_ids,
            energies: indices.iter().map(|&i| dataset.frames[i].energy).collect(),
            forces_flat: indices
                .iter()
                .flat_map(|&i| dataset.frames[i].forces.iter().flatten().copied())
                .collect(),
            n_frames: indices.len(),
            n_atoms,
            tape: Tape::new(),
        }
    }

    /// `(energy RMSE per atom, force RMSE)` of the model on this batch.
    pub(crate) fn rmse(&self, model: &DnnpModel) -> (f64, f64) {
        let tape = &self.tape;
        let taped = model.params.register(tape);
        let graph = forward_cached(
            tape,
            &taped,
            &model.config,
            &model.stats,
            &self.merged,
            &self.onehot,
            true,
        );
        let out = self.graph_rmse(&graph);
        // Recycle the graph now: this also releases the tape's handles on
        // the model parameters, keeping the optimiser's in-place update
        // copy-free.
        tape.reset();
        out
    }

    /// As [`PreparedBatch::rmse`] for a whole population sharing this
    /// batch's geometry bucket: one fused first-layer sweep evaluates every
    /// genome (see [`crate::model::forward_population`]). Per-genome RMSEs
    /// are bit-identical to sequential [`PreparedBatch::rmse`] calls.
    pub(crate) fn rmse_population(&self, models: &[&DnnpModel]) -> Vec<(f64, f64)> {
        let tape = &self.tape;
        let tapeds: Vec<_> = models.iter().map(|m| m.params.register(tape)).collect();
        let configs: Vec<&TrainConfig> = models.iter().map(|m| &m.config).collect();
        let graphs = crate::model::forward_population(
            tape,
            &tapeds,
            &configs,
            &models[0].stats,
            &self.merged,
            &self.onehot,
            true,
        );
        let out = graphs.iter().map(|graph| self.graph_rmse(graph)).collect();
        tape.reset();
        out
    }

    /// RMSE reduction over one genome's evaluated graph (shared by the
    /// sequential and fused paths so the summation order is identical).
    fn graph_rmse(&self, graph: &crate::model::FrameGraph) -> (f64, f64) {
        let tape = &self.tape;
        let energies =
            tape.scatter_add_rows(graph.atomic, Rc::clone(&self.frame_ids), self.n_frames);
        let n = self.n_atoms as f64;
        let e_sq: f64 = tape.with_value(energies, |e_pred| {
            e_pred
                .data()
                .iter()
                .zip(self.energies.iter())
                .map(|(p, r)| ((p - r) / n) * ((p - r) / n))
                .sum::<f64>()
        }) / self.n_frames as f64;
        let f_sq: f64 = tape.with_value(graph.forces.expect("forces requested"), |f_pred| {
            f_pred
                .data()
                .iter()
                .zip(self.forces_flat.iter())
                .map(|(p, r)| (p - r) * (p - r))
                .sum::<f64>()
        }) / self.forces_flat.len() as f64;
        (e_sq.sqrt(), f_sq.sqrt())
    }

    /// Node count and per-kernel census of one validation RMSE pass —
    /// builds the same graph [`PreparedBatch::rmse`] builds, reads the
    /// census, and resets. Node counts depend only on graph topology, never
    /// on weights, so the result is deterministic.
    pub(crate) fn budget_census(&self, model: &DnnpModel) -> (usize, Vec<(&'static str, usize)>) {
        let tape = &self.tape;
        tape.reset();
        let taped = model.params.register(tape);
        let graph = forward_cached(
            tape,
            &taped,
            &model.config,
            &model.stats,
            &self.merged,
            &self.onehot,
            true,
        );
        let _ = self.graph_rmse(&graph);
        let nodes = tape.len();
        let census = tape.op_census(0..nodes);
        tape.reset();
        (nodes, census)
    }
}

/// One phase of the deterministic step budget: how many tape nodes the
/// phase records and a per-kernel census under it. Phases with zero nodes
/// (backward, optimizer) do real work — the value-level backward and the
/// in-place Adam update — without recording anything; their wall-clock cost
/// rides the `side.phase.*` histograms instead.
pub struct PhaseBudget {
    /// Phase name: `params`, `descriptor`, `forward`, `force`, `loss`,
    /// `backward`, `optimizer`, or `val`.
    pub phase: &'static str,
    /// Tape nodes recorded by the phase.
    pub nodes: usize,
    /// `(kernel, count)` pairs, name-sorted.
    pub kernels: Vec<(&'static str, usize)>,
}

/// Deterministic per-phase step-budget table: the tape-node census of one
/// training step plus one validation pass. A pure function of config and
/// dataset shapes (probed with a fixed seed), so it is byte-identical
/// across runs and resumes and belongs in the deterministic profile
/// artifacts.
pub struct StepBudget {
    /// Phases in execution order.
    pub phases: Vec<PhaseBudget>,
}

impl StepBudget {
    /// Total tape nodes across all phases.
    pub fn total_nodes(&self) -> usize {
        self.phases.iter().map(|p| p.nodes).sum()
    }

    /// Markdown rendering: one row per phase, kernel rows indented under it.
    pub fn markdown(&self) -> String {
        let mut out = String::from("| phase | kernel | nodes |\n|---|---|---:|\n");
        for p in &self.phases {
            out.push_str(&format!("| {} | — | {} |\n", p.phase, p.nodes));
            for (k, c) in &p.kernels {
                out.push_str(&format!("| | {k} | {c} |\n"));
            }
        }
        out.push_str(&format!("| total | | {} |\n", self.total_nodes()));
        out
    }
}

/// Probe the per-phase step budget for a training configuration on the
/// given datasets: model init and one step-0 graph build on a throwaway
/// run (fixed seed — node counts depend only on shapes), without touching
/// any weights or rng stream a campaign uses.
pub fn step_budget(
    config: &TrainConfig,
    train_ds: &Dataset,
    val_ds: &Dataset,
) -> Result<StepBudget, String> {
    use rand::SeedableRng;
    let sup = Supervision::none();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let run = TrainRun::new(config, train_ds, val_ds, &mut rng, &sup)?;
    Ok(StepBudget { phases: run.budget_phases() })
}

/// Result of a training run.
pub struct TrainReport {
    /// The trained model (whatever state it reached).
    pub model: DnnpModel,
    /// The learning curve (the paper's `lcurve.out`).
    pub lcurve: Lcurve,
    /// True if training diverged (non-finite loss/weights) — the paper's
    /// "training failed" case, penalised with MAXINT fitness upstream.
    pub diverged: bool,
    /// Steps actually completed.
    pub steps_completed: usize,
    /// Structured early-termination reason, when supervision aborted the
    /// run before `num_steps` (divergence sentinel, deadline budget, or
    /// external cancellation). `None` for a run that finished its steps.
    pub abort: Option<AbortReason>,
}

/// Loss values considered irrecoverable even when still finite (the
/// absolute ceiling of [`crate::supervise::Sentinel`]).
pub const DIVERGENCE_LOSS_LIMIT: f64 = 1e12;

/// Maximum number of distinct batch compositions whose merged caches are
/// kept. Small training sets repeat compositions constantly (the merge is
/// then free); large runs stay memory-bounded and just merge on the fly.
const MERGED_CACHE_CAP: usize = 256;

/// Train a model on `train`, validating against `val`.
pub fn train<R: Rng + ?Sized>(
    config: &TrainConfig,
    train_ds: &Dataset,
    val_ds: &Dataset,
    rng: &mut R,
) -> Result<TrainReport, String> {
    train_supervised(config, train_ds, val_ds, rng, &Supervision::none())
}

/// As [`train`], under supervision: cancellation, deadline, and sentinel
/// checks run at step boundaries (see [`crate::supervise`]). The checks
/// consume no randomness, so the weights of a completed run are
/// bit-identical with or without supervision.
pub fn train_supervised<R: Rng + ?Sized>(
    config: &TrainConfig,
    train_ds: &Dataset,
    val_ds: &Dataset,
    rng: &mut R,
    sup: &Supervision<'_>,
) -> Result<TrainReport, String> {
    let mut run = TrainRun::new(config, train_ds, val_ds, rng, sup)?;
    while run.step() {}
    Ok(run.finish())
}

/// Reference labels for a batch composition, as ready-made tensors; the
/// step loop hands the tape cheap Arc clones instead of re-collecting.
fn batch_labels(
    train_ds: &Dataset,
    indices: &[usize],
    batch_total: usize,
    n_atoms: usize,
) -> (Tensor, Tensor) {
    let e: Vec<f64> = indices.iter().map(|&i| train_ds.frames[i].energy).collect();
    let f: Vec<f64> = indices
        .iter()
        .flat_map(|&i| train_ds.frames[i].forces.iter().flatten().copied())
        .collect();
    (
        Tensor::matrix(batch_total, 1, e),
        Tensor::matrix(batch_total * n_atoms, 3, f),
    )
}

/// One training run as an explicit per-step state machine.
///
/// [`train_supervised`] is `new` → `step` until inactive → `finish`; the
/// decomposition exists so [`crate::population::train_population`] can
/// interleave several runs on one shared tape arena, share descriptor
/// caches and the validation batch across a geometry bucket, and replace
/// the per-run validation sweep with one fused population sweep. A run
/// driven step-by-step is bit-identical to the monolithic loop it replaced:
/// every rng draw, float op, and supervision probe happens in the same
/// order.
pub struct TrainRun<'a> {
    config: &'a TrainConfig,
    train_ds: &'a Dataset,
    sup: &'a Supervision<'a>,
    model: DnnpModel,
    schedule: LrSchedule,
    prefactors: PrefactorSchedule,
    n_atoms: usize,
    train_caches: Rc<Vec<FrameCache>>,
    val_batch: Rc<PreparedBatch>,
    adam: Adam,
    lcurve: Lcurve,
    diverged: bool,
    steps_completed: usize,
    abort: Option<AbortReason>,
    initial_loss: Option<f64>,
    check_every: usize,
    batch_total: usize,
    onehot_batch: Tensor,
    frame_ids: Rc<[usize]>,
    step_indices: Vec<Vec<usize>>,
    merged_memo: HashMap<Vec<usize>, (FrameCache, Tensor, Tensor)>,
    /// One persistent tape for the whole run (shared across runs in
    /// population mode): each step rebuilds the same graph topology, so
    /// `reset()` turns the tape into an arena and the steady state runs
    /// allocation-free.
    tape: Rc<Tape>,
    /// Reusable merger for compositions past the memo cap: steady-state
    /// merges reclaim the previous step's buffers.
    batch_merger: BatchCache,
    step: usize,
    last_loss: f64,
    last_trn_e_sq: f64,
    last_trn_f_sq: f64,
}

impl<'a> TrainRun<'a> {
    /// Set up a run: model init, per-frame descriptor caches, the merged
    /// validation batch, and every step's batch indices (drawn up front in
    /// the same nested order as a per-step draw, so the rng stream is
    /// unchanged).
    pub fn new<R: Rng + ?Sized>(
        config: &'a TrainConfig,
        train_ds: &'a Dataset,
        val_ds: &Dataset,
        rng: &mut R,
        sup: &'a Supervision<'a>,
    ) -> Result<Self, String> {
        config.validate()?;
        if val_ds.frames.is_empty() {
            return Err("empty validation dataset".into());
        }
        let model = DnnpModel::new(config.clone(), train_ds, rng)?;
        // Descriptor values are weight-independent: cache them per frame
        // once (training and validation), which removes the geometry
        // subgraph from every step.
        let train_caches: Rc<Vec<FrameCache>> =
            Rc::new(train_ds.frames.iter().map(|f| model.build_cache(&f.positions)).collect());
        let n_val = config.val_max_frames.max(1).min(val_ds.frames.len());
        let val_indices: Vec<usize> = (0..n_val).collect();
        let val_caches: Vec<FrameCache> =
            val_ds.frames[..n_val].iter().map(|f| model.build_cache(&f.positions)).collect();
        let val_batch =
            Rc::new(PreparedBatch::assemble(&model, val_ds, &val_indices, val_caches));
        Self::with_parts(
            config,
            train_ds,
            rng,
            sup,
            model,
            train_caches,
            val_batch,
            Rc::new(Tape::new()),
        )
    }

    /// Assemble a run from shared parts — the population path, where
    /// descriptor caches, the validation batch, and the tape arena are
    /// shared across every genome in a geometry bucket.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_parts<R: Rng + ?Sized>(
        config: &'a TrainConfig,
        train_ds: &'a Dataset,
        rng: &mut R,
        sup: &'a Supervision<'a>,
        model: DnnpModel,
        train_caches: Rc<Vec<FrameCache>>,
        val_batch: Rc<PreparedBatch>,
        tape: Rc<Tape>,
    ) -> Result<Self, String> {
        let schedule = LrSchedule::from_config(config);
        let prefactors = PrefactorSchedule::from_config(config);
        let n_atoms = train_ds.n_atoms();
        let shapes: Vec<Shape> = model.params.flat().iter().map(|t| t.shape()).collect();
        let adam = Adam::new(&shapes);
        let batch_total = config.n_workers * config.batch_per_worker;
        let onehot_batch = tile_onehot(&model.onehot, batch_total);
        let frame_ids: Rc<[usize]> = (0..batch_total)
            .flat_map(|b| std::iter::repeat_n(b, n_atoms))
            .collect::<Vec<usize>>()
            .into();
        // Draw every step's batch indices up front. This lets identical
        // batch compositions share one merged cache instead of re-merging
        // per step.
        let step_indices: Vec<Vec<usize>> = (0..config.num_steps)
            .map(|_| {
                (0..batch_total)
                    .map(|_| rng.random_range(0..train_ds.frames.len()))
                    .collect()
            })
            .collect();
        let mut merged_memo: HashMap<Vec<usize>, (FrameCache, Tensor, Tensor)> = HashMap::new();
        for indices in &step_indices {
            if !merged_memo.contains_key(indices.as_slice())
                && merged_memo.len() < MERGED_CACHE_CAP
            {
                let batch_caches: Vec<&FrameCache> =
                    indices.iter().map(|&i| &train_caches[i]).collect();
                let (e_ref, f_ref) = batch_labels(train_ds, indices, batch_total, n_atoms);
                merged_memo.insert(
                    indices.clone(),
                    (merge_frame_caches(&batch_caches), e_ref, f_ref),
                );
            }
        }
        Ok(TrainRun {
            config,
            train_ds,
            sup,
            model,
            schedule,
            prefactors,
            n_atoms,
            train_caches,
            val_batch,
            adam,
            lcurve: Lcurve::new(),
            diverged: false,
            steps_completed: 0,
            abort: None,
            initial_loss: None,
            check_every: sup.check_every.max(1),
            batch_total,
            onehot_batch,
            frame_ids,
            step_indices,
            merged_memo,
            tape,
            batch_merger: BatchCache::new(),
            step: 0,
            last_loss: f64::NAN,
            last_trn_e_sq: 0.0,
            last_trn_f_sq: 0.0,
        })
    }

    /// True while the run has steps left and no abort or divergence fired.
    pub fn is_active(&self) -> bool {
        !self.diverged && self.abort.is_none() && self.step < self.config.num_steps
    }

    /// Build the step-0 training graph once, without evaluating the loss or
    /// touching weights, and read back the per-phase node census. Leaves
    /// the tape empty. See [`step_budget`].
    fn budget_phases(&self) -> Vec<PhaseBudget> {
        let tape = &*self.tape;
        tape.reset();
        let Some(indices) = self.step_indices.first() else {
            return Vec::new();
        };
        let merged_owned;
        let merged: &FrameCache = match self.merged_memo.get(indices.as_slice()) {
            Some((m, _, _)) => m,
            None => {
                let batch_caches: Vec<&FrameCache> =
                    indices.iter().map(|&i| &self.train_caches[i]).collect();
                merged_owned = merge_frame_caches(&batch_caches);
                &merged_owned
            }
        };
        let (e_ref_t, f_ref_t) =
            batch_labels(self.train_ds, indices, self.batch_total, self.n_atoms);

        let taped = self.model.params.register(tape);
        let params_end = tape.len();
        let graph = forward_cached(
            tape,
            &taped,
            self.config,
            &self.model.stats,
            merged,
            &self.onehot_batch,
            true,
        );
        let force_end = tape.len();
        let forces = graph.forces.expect("training requests forces");
        // Loss section: the same kernels step_core records (values unused).
        let energies =
            tape.scatter_add_rows(graph.atomic, Rc::clone(&self.frame_ids), self.batch_total);
        let e_ref = tape.constant(e_ref_t);
        let e_diff = tape.sub(energies, e_ref);
        let f_ref = tape.constant(f_ref_t);
        let f_diff = tape.sub(forces, f_ref);
        let le = tape.scale(tape.sum_all(tape.square(e_diff)), 1.0);
        let lf = tape.scale(tape.sum_all(tape.square(f_diff)), 1.0);
        let _ = tape.add(le, lf);
        let loss_end = tape.len();

        let phase = |name: &'static str, range: std::ops::Range<usize>| PhaseBudget {
            phase: name,
            nodes: range.len(),
            kernels: tape.op_census(range),
        };
        let mut phases = vec![
            phase("params", 0..params_end),
            phase("descriptor", params_end..graph.descriptor_end),
            phase("forward", graph.descriptor_end..graph.forward_end),
            phase("force", graph.forward_end..force_end),
            phase("loss", force_end..loss_end),
            // The backward is value-level and Adam updates in place:
            // deliberately node-free (their wall twin is side.phase.*).
            PhaseBudget { phase: "backward", nodes: 0, kernels: Vec::new() },
            PhaseBudget { phase: "optimizer", nodes: 0, kernels: Vec::new() },
        ];
        tape.reset();
        let (val_nodes, val_census) = self.val_batch.budget_census(&self.model);
        phases.push(PhaseBudget { phase: "val", nodes: val_nodes, kernels: val_census });
        phases
    }

    /// The model being trained.
    pub fn model(&self) -> &DnnpModel {
        &self.model
    }

    /// Run one full step, including any due validation row. Returns `true`
    /// while the run remains active.
    pub fn step(&mut self) -> bool {
        if !self.is_active() {
            return false;
        }
        if self.step_core() {
            let val_t0 = self.sup.obs().map(|_| std::time::Instant::now());
            let (rmse_e, rmse_f) = self.val_batch.rmse(&self.model);
            if let (Some(rec), Some(t0)) = (self.sup.obs(), val_t0) {
                rec.observe(names::H_PHASE_VAL_WALL_NS, t0.elapsed().as_nanos() as f64);
            }
            self.apply_val(rmse_e, rmse_f);
        }
        self.advance();
        self.is_active()
    }

    /// Move to the next step index. Split from [`TrainRun::step_core`] so
    /// population mode can run the fused validation sweep between the two.
    pub(crate) fn advance(&mut self) {
        self.step += 1;
    }

    /// One training step without its validation row: supervision probes,
    /// forward, loss, backward, Adam. Returns `true` when a validation row
    /// is due for the step just completed (the caller supplies it — the
    /// sequential path from its own [`PreparedBatch`], population mode from
    /// the fused sweep).
    pub(crate) fn step_core(&mut self) -> bool {
        let step = self.step;
        let sup = self.sup;
        // Resolved once per step: `None` when telemetry is off, so the hot
        // loop pays a single branch per instrumentation site. Everything
        // recorded below is computed from values the step already produced
        // — no extra rng draws, no reordered float ops — so weights are
        // bit-identical either way.
        let obs = sup.obs();
        // Step-boundary supervision: cancellation and the simulated-clock
        // deadline are polled *before* the step's work is paid for, so an
        // aborted run stops at the wall instead of crossing it. None of
        // these probes touch the rng stream.
        if step.is_multiple_of(self.check_every) {
            if sup.is_cancelled() {
                self.abort = Some(AbortReason::Cancelled { step });
                return false;
            }
            if sup.deadline_fires(step) {
                self.abort = Some(AbortReason::Deadline {
                    step,
                    sim_minutes: sup.sim_minutes(step),
                });
                return false;
            }
        }
        if sup.heartbeat_every > 0 && step.is_multiple_of(sup.heartbeat_every) {
            if let Some(beat) = sup.heartbeat {
                beat(sup.sim_minutes(step), sup.sim_minutes(self.config.num_steps));
            }
        }
        let step_t0 = obs.map(|_| std::time::Instant::now());
        let pref = self.prefactors.at(self.schedule.decay_ratio(step));
        let n = self.n_atoms as f64;
        let tape = &*self.tape;
        // Pool hits/misses are pure functions of the lease sequence, so the
        // metered counts are reproducible; the unobserved path never meters.
        if obs.is_some() && !tape.alloc_metering() {
            tape.set_alloc_metering(true);
        }

        // One tape evaluates the whole data-parallel batch (the B frames a
        // Horovod step would process across its workers).
        let indices = &self.step_indices[step];
        let merged_fallback;
        let (merged, e_ref_t, f_ref_t) = match self.merged_memo.get(indices.as_slice()) {
            Some((m, e, f)) => (m, e, f),
            None => {
                let batch_caches: Vec<&FrameCache> =
                    indices.iter().map(|&i| &self.train_caches[i]).collect();
                let (e_ref, f_ref) =
                    batch_labels(self.train_ds, indices, self.batch_total, self.n_atoms);
                merged_fallback = (self.batch_merger.merge(&batch_caches), e_ref, f_ref);
                (&merged_fallback.0, &merged_fallback.1, &merged_fallback.2)
            }
        };
        let taped = self.model.params.register(tape);
        let graph = forward_cached(
            tape,
            &taped,
            self.config,
            &self.model.stats,
            merged,
            &self.onehot_batch,
            true,
        );
        let forces = graph.forces.expect("training requests forces");

        // Per-frame energies from the per-atom energies.
        let energies =
            tape.scatter_add_rows(graph.atomic, Rc::clone(&self.frame_ids), self.batch_total);
        let e_ref = tape.constant(e_ref_t.clone());
        let e_diff = tape.sub(energies, e_ref);
        let f_ref = tape.constant(f_ref_t.clone());
        let f_diff = tape.sub(forces, f_ref);

        // Batch-mean loss: (1/B)·Σ_b [pe·(ΔE_b/N)² + pf·Σ‖ΔF_b‖²/(3N)].
        let b = self.batch_total as f64;
        let le = tape.scale(tape.sum_all(tape.square(e_diff)), pref.pe / (n * n * b));
        let lf = tape.scale(tape.sum_all(tape.square(f_diff)), pref.pf / (3.0 * n * b));
        let loss = tape.add(le, lf);

        let loss_value = tape.item(loss);
        self.last_loss = loss_value;
        if sup.sentinel.fires(loss_value, self.initial_loss) {
            // Leave the (possibly shared) tape empty on this mid-graph exit
            // so interleaved population runs never see stale nodes.
            tape.reset();
            self.diverged = true;
            self.abort = Some(AbortReason::Diverged { step, loss: loss_value });
            return false;
        }
        if self.initial_loss.is_none() {
            self.initial_loss = Some(loss_value);
        }

        // Training-batch RMSE bookkeeping (free: values already live).
        self.last_trn_e_sq = tape.with_value(e_diff, |t| {
            t.data().iter().map(|v| (v / n) * (v / n)).sum::<f64>()
        }) / b;
        self.last_trn_f_sq = tape.with_value(f_diff, |t| {
            t.data().iter().map(|v| v * v).sum::<f64>() / t.len() as f64
        });

        // Wall twin of the graph phase (descriptor/forward/force/loss tape
        // construction): everything from the step start to this point.
        let graph_wall_ns = step_t0.map(|t0| t0.elapsed().as_nanos() as f64);
        // Value-level backward: the optimiser only needs gradient numbers,
        // so nothing new is recorded on the tape.
        let backward_t0 = obs.map(|_| std::time::Instant::now());
        let grad_values: Vec<Tensor> = tape.grad_values(loss, &taped.flat);
        let backward_wall_ns = backward_t0.map(|t0| t0.elapsed().as_nanos() as f64);
        // Arena high-water mark, read before the reset empties the node
        // list (only when telemetry is live).
        let tape_nodes = if obs.is_some() { tape.len() } else { 0 };
        // Reset BEFORE the optimiser update: recycling the graph releases
        // the tape's handles on the parameter tensors, so Adam's in-place
        // write doesn't trigger copy-on-write. The extracted gradients keep
        // their buffers alive independently.
        tape.reset();
        if grad_values.iter().any(|g| g.has_non_finite()) {
            self.diverged = true;
            self.abort = Some(AbortReason::Diverged { step, loss: loss_value });
            return false;
        }

        let optimizer_t0 = obs.map(|_| std::time::Instant::now());
        self.adam.step(&mut self.model.params, &grad_values, self.schedule.lr(step));
        let optimizer_wall_ns = optimizer_t0.map(|t0| t0.elapsed().as_nanos() as f64);
        if self.model.params.has_non_finite() {
            self.diverged = true;
            self.abort = Some(AbortReason::Diverged { step, loss: loss_value });
            return false;
        }
        self.steps_completed = step + 1;

        if let Some(rec) = obs {
            let lr = self.schedule.lr(step);
            let grad_norm = grad_values
                .iter()
                .map(|g| g.data().iter().map(|v| v * v).sum::<f64>())
                .sum::<f64>()
                .sqrt();
            rec.counter_add(names::C_STEPS, 1);
            rec.observe(names::H_LOSS, loss_value);
            rec.observe(names::H_LR, lr);
            rec.observe(names::H_GRAD_NORM, grad_norm);
            rec.gauge_set(names::G_TAPE_NODES, tape_nodes as f64);
            rec.gauge_set(names::G_TAPE_POOLED, tape.pooled_buffers() as f64);
            let alloc = tape.take_alloc_stats();
            rec.counter_add(names::C_TAPE_POOL_HITS, alloc.pool_hits);
            rec.counter_add(names::C_TAPE_POOL_MISSES, alloc.pool_misses);
            rec.counter_add(names::C_TAPE_LEASES, alloc.leases);
            rec.gauge_set(names::G_TAPE_LEASED_HW, alloc.leased_bytes_hw as f64);
            rec.gauge_set(names::G_TAPE_RETAINED, tape.retained_bytes() as f64);
            if let Some(t0) = step_t0 {
                rec.observe(names::H_STEP_WALL_NS, t0.elapsed().as_nanos() as f64);
            }
            if let (Some(g), Some(b), Some(o)) =
                (graph_wall_ns, backward_wall_ns, optimizer_wall_ns)
            {
                rec.observe(names::H_PHASE_GRAPH_WALL_NS, g);
                rec.observe(names::H_PHASE_BACKWARD_WALL_NS, b);
                rec.observe(names::H_PHASE_OPTIMIZER_WALL_NS, o);
            }
            rec.record(Event {
                name: names::TRAIN_STEP,
                cat: cats::TRAIN,
                ctx: sup.span,
                step: Some(step as u64),
                when: When::InTask(sup.sim_minutes(step)),
                dur_min: sup.minutes_per_step,
                worker: None,
                args: vec![("loss", loss_value), ("lr", lr), ("grad_norm", grad_norm)],
            });
        }

        step.is_multiple_of(self.config.disp_freq)
    }

    /// Record the validation row for the step just completed by
    /// [`TrainRun::step_core`], with the same divergence handling as the
    /// sequential loop.
    pub(crate) fn apply_val(&mut self, rmse_e_val: f64, rmse_f_val: f64) {
        let step = self.step;
        if !rmse_e_val.is_finite() || !rmse_f_val.is_finite() {
            self.diverged = true;
            self.abort = Some(AbortReason::Diverged { step, loss: self.last_loss });
            return;
        }
        self.lcurve.push(LcurveRow {
            step,
            rmse_e_val,
            rmse_e_trn: self.last_trn_e_sq.sqrt(),
            rmse_f_val,
            rmse_f_trn: self.last_trn_f_sq.sqrt(),
            lr: self.schedule.lr(step),
        });
        if let Some(rec) = self.sup.obs() {
            // Stream the display row as an event: telemetry consumers see
            // every interval, not just the journaled tail.
            rec.record(Event {
                name: names::LCURVE_ROW,
                cat: cats::LCURVE,
                ctx: self.sup.span,
                step: Some(step as u64),
                when: When::InTask(self.sup.sim_minutes(step)),
                dur_min: 0.0,
                worker: None,
                args: vec![
                    ("rmse_e_val", rmse_e_val),
                    ("rmse_e_trn", self.last_trn_e_sq.sqrt()),
                    ("rmse_f_val", rmse_f_val),
                    ("rmse_f_trn", self.last_trn_f_sq.sqrt()),
                    ("lr", self.schedule.lr(step)),
                ],
            });
        }
    }

    /// True when the run completed all its steps and still owes the final
    /// validation row.
    pub(crate) fn needs_final_row(&self) -> bool {
        !self.diverged && self.abort.is_none()
    }

    /// Complete the run: final validation row (for a run that finished its
    /// steps) plus abort telemetry.
    pub fn finish(self) -> TrainReport {
        let final_rmse =
            if self.needs_final_row() { Some(self.val_batch.rmse(&self.model)) } else { None };
        self.finish_with(final_rmse)
    }

    /// As [`TrainRun::finish`] with an externally computed final validation
    /// RMSE (population mode computes it in the fused sweep). Must be
    /// `Some` exactly when [`TrainRun::needs_final_row`] is true.
    pub(crate) fn finish_with(mut self, final_rmse: Option<(f64, f64)>) -> TrainReport {
        // Always attempt a final validation row for completed training
        // (skipped when supervision aborted the run early: the model is
        // half-trained and the caller only wants the structured reason).
        if self.needs_final_row() {
            let (rmse_e_val, rmse_f_val) =
                final_rmse.expect("completed run finished without a final validation RMSE");
            if rmse_e_val.is_finite() && rmse_f_val.is_finite() {
                let last = self.lcurve.last().copied();
                self.lcurve.push(LcurveRow {
                    step: self.config.num_steps,
                    rmse_e_val,
                    rmse_e_trn: last.map_or(rmse_e_val, |r| r.rmse_e_trn),
                    rmse_f_val,
                    rmse_f_trn: last.map_or(rmse_f_val, |r| r.rmse_f_trn),
                    lr: self.schedule.lr(self.config.num_steps),
                });
                if let Some(rec) = self.sup.obs() {
                    let row = self.lcurve.last().copied().expect("just pushed");
                    rec.record(Event {
                        name: names::LCURVE_ROW,
                        cat: cats::LCURVE,
                        ctx: self.sup.span,
                        step: Some(row.step as u64),
                        when: When::InTask(self.sup.sim_minutes(row.step)),
                        dur_min: 0.0,
                        worker: None,
                        args: vec![
                            ("rmse_e_val", row.rmse_e_val),
                            ("rmse_e_trn", row.rmse_e_trn),
                            ("rmse_f_val", row.rmse_f_val),
                            ("rmse_f_trn", row.rmse_f_trn),
                            ("lr", row.lr),
                        ],
                    });
                }
            } else {
                self.diverged = true;
            }
        }

        if let (Some(rec), Some(reason)) = (self.sup.obs(), &self.abort) {
            rec.counter_add(names::C_ABORTS, 1);
            // `kind`: 0 = diverged, 1 = deadline, 2 = cancelled.
            let (kind, at_step, loss) = match *reason {
                AbortReason::Diverged { step, loss } => (0.0, step, loss),
                AbortReason::Deadline { step, .. } => (1.0, step, f64::NAN),
                AbortReason::Cancelled { step } => (2.0, step, f64::NAN),
            };
            rec.record(Event {
                name: names::TRAIN_ABORT,
                cat: cats::TRAIN,
                ctx: self.sup.span,
                step: Some(at_step as u64),
                when: When::InTask(self.sup.sim_minutes(at_step)),
                dur_min: 0.0,
                worker: None,
                args: vec![("kind", kind), ("loss", loss)],
            });
        }

        TrainReport {
            model: self.model,
            lcurve: self.lcurve,
            diverged: self.diverged,
            steps_completed: self.steps_completed,
            abort: self.abort,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::Sentinel;
    use dphpo_md::generate::{generate_dataset, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_data(seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 10;
        let ds = generate_dataset(&gen, &mut rng);
        ds.split(0.25, &mut rng)
    }

    fn tiny_config() -> TrainConfig {
        TrainConfig {
            start_lr: 0.005,
            stop_lr: 1e-4,
            rcut: 5.0,
            rcut_smth: 2.0,
            embedding_neurons: vec![6, 4],
            fitting_neurons: vec![8, 8],
            num_steps: 60,
            batch_per_worker: 1,
            n_workers: 2,
            disp_freq: 20,
            val_max_frames: 2,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_reduces_validation_loss() {
        let (train_ds, val_ds) = tiny_data(1);
        let mut rng = StdRng::seed_from_u64(2);
        let report = train(&tiny_config(), &train_ds, &val_ds, &mut rng).unwrap();
        assert!(!report.diverged);
        assert_eq!(report.steps_completed, 60);
        let rows = report.lcurve.rows();
        assert!(rows.len() >= 2);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last.rmse_f_val < first.rmse_f_val,
            "force RMSE did not improve: {} -> {}",
            first.rmse_f_val,
            last.rmse_f_val
        );
        assert!(
            last.rmse_e_val < first.rmse_e_val,
            "energy RMSE did not improve: {} -> {}",
            first.rmse_e_val,
            last.rmse_e_val
        );
    }

    #[test]
    fn lcurve_final_row_is_at_num_steps() {
        let (train_ds, val_ds) = tiny_data(3);
        let mut rng = StdRng::seed_from_u64(4);
        let report = train(&tiny_config(), &train_ds, &val_ds, &mut rng).unwrap();
        assert_eq!(report.lcurve.last().unwrap().step, 60);
        assert!(report.lcurve.final_losses().is_some());
    }

    #[test]
    fn absurd_learning_rate_diverges() {
        let (train_ds, val_ds) = tiny_data(5);
        let mut rng = StdRng::seed_from_u64(6);
        let config = TrainConfig { start_lr: 1e100, stop_lr: 1e99, ..tiny_config() };
        let report = train(&config, &train_ds, &val_ds, &mut rng).unwrap();
        assert!(report.diverged, "1e100 learning rate should diverge");
        assert!(report.steps_completed < config.num_steps);
        assert!(
            matches!(report.abort, Some(AbortReason::Diverged { .. })),
            "divergence must carry a structured reason: {:?}",
            report.abort
        );
    }

    #[test]
    fn sentinel_aborts_diverging_run_within_one_interval() {
        // The acceptance check for the supervision layer: an absurd
        // learning rate must stop within one sentinel interval (the checks
        // run every step, so within a couple of steps of the blow-up) —
        // not run all `num_steps` and only then report failure.
        let (train_ds, val_ds) = tiny_data(5);
        let mut rng = StdRng::seed_from_u64(6);
        let config = TrainConfig {
            start_lr: 1e100,
            stop_lr: 1e99,
            num_steps: 400,
            ..tiny_config()
        };
        let sup = Supervision { sentinel: Sentinel::supervised(), ..Supervision::none() };
        let report = train_supervised(&config, &train_ds, &val_ds, &mut rng, &sup).unwrap();
        let Some(AbortReason::Diverged { step, loss }) = report.abort else {
            panic!("expected a divergence abort, got {:?}", report.abort);
        };
        assert!(step <= 2, "sentinel took {step} steps to fire");
        assert!(
            report.steps_completed <= 2,
            "executed {} of {} steps; the sentinel should abort almost immediately",
            report.steps_completed,
            config.num_steps
        );
        assert!(!loss.is_finite() || loss > 1e12, "reported loss {loss} is not divergent");
    }

    #[test]
    fn explosion_sentinel_fires_before_the_absolute_ceiling() {
        // A loss that explodes relative to its starting value but has not
        // yet crossed 1e12 is caught only by the supervised sentinel.
        let healthy = Sentinel::default();
        let strict = Sentinel::supervised();
        let initial = Some(1e-2);
        let exploded = 1e5; // 1e7x the initial loss, far below 1e12
        assert!(!healthy.fires(exploded, initial));
        assert!(strict.fires(exploded, initial));
    }

    #[test]
    fn cancellation_aborts_at_a_step_boundary() {
        let (train_ds, val_ds) = tiny_data(3);
        let mut rng = StdRng::seed_from_u64(4);
        let cancelled = || true;
        let sup = Supervision { cancelled: Some(&cancelled), ..Supervision::none() };
        let report =
            train_supervised(&tiny_config(), &train_ds, &val_ds, &mut rng, &sup).unwrap();
        assert_eq!(report.abort, Some(AbortReason::Cancelled { step: 0 }));
        assert_eq!(report.steps_completed, 0);
        assert!(!report.diverged, "cancellation is not divergence");
    }

    #[test]
    fn deadline_budget_stops_training_at_the_wall() {
        let (train_ds, val_ds) = tiny_data(3);
        let mut rng = StdRng::seed_from_u64(4);
        // 1 simulated minute per step, 10-minute budget, 60-step config:
        // exactly 10 steps fit inside the wall.
        let sup = Supervision {
            deadline_minutes: Some(10.0),
            minutes_per_step: 1.0,
            ..Supervision::none()
        };
        let report =
            train_supervised(&tiny_config(), &train_ds, &val_ds, &mut rng, &sup).unwrap();
        assert_eq!(
            report.abort,
            Some(AbortReason::Deadline { step: 10, sim_minutes: 10.0 })
        );
        assert_eq!(report.steps_completed, 10);
    }

    #[test]
    fn heartbeats_report_monotone_simulated_progress() {
        use std::cell::RefCell;
        let (train_ds, val_ds) = tiny_data(3);
        let mut rng = StdRng::seed_from_u64(4);
        let beats: RefCell<Vec<(f64, f64)>> = RefCell::new(Vec::new());
        let beat = |done: f64, projected: f64| beats.borrow_mut().push((done, projected));
        let sup = Supervision {
            heartbeat: Some(&beat),
            heartbeat_every: 20,
            minutes_per_step: 0.5,
            ..Supervision::none()
        };
        let report =
            train_supervised(&tiny_config(), &train_ds, &val_ds, &mut rng, &sup).unwrap();
        assert!(report.abort.is_none());
        let beats = beats.into_inner();
        // 60 steps / 20 = beats at steps 0, 20, 40.
        assert_eq!(beats.len(), 3);
        assert_eq!(beats[1], (10.0, 30.0));
        assert!(beats.windows(2).all(|w| w[0].0 < w[1].0), "progress must be monotone");
    }

    #[test]
    fn supervision_probes_do_not_change_trained_weights() {
        // The determinism cornerstone: attaching inert supervision must not
        // alter the rng stream or the resulting model.
        let (train_ds, val_ds) = tiny_data(9);
        let run = |supervised: bool| {
            let mut rng = StdRng::seed_from_u64(17);
            let mut config = tiny_config();
            config.num_steps = 20;
            let report = if supervised {
                let cancelled = || false;
                let beat = |_: f64, _: f64| {};
                let sup = Supervision {
                    cancelled: Some(&cancelled),
                    deadline_minutes: Some(1e9),
                    minutes_per_step: 0.001,
                    heartbeat: Some(&beat),
                    heartbeat_every: 5,
                    check_every: 1,
                    sentinel: Sentinel::supervised(),
                    ..Supervision::none()
                };
                train_supervised(&config, &train_ds, &val_ds, &mut rng, &sup).unwrap()
            } else {
                train(&config, &train_ds, &val_ds, &mut rng).unwrap()
            };
            report.lcurve.final_losses().unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn telemetry_recorder_does_not_change_trained_weights() {
        // The PR's acceptance bar at the trainer level: a live recorder
        // must not alter the rng stream, the float op order, or therefore a
        // single weight bit — telemetry reads values the step already made.
        use dphpo_obs::{MemoryRecorder, Recorder, SpanCtx};
        let (train_ds, val_ds) = tiny_data(9);
        let run = |rec: Option<&MemoryRecorder>| {
            let mut rng = StdRng::seed_from_u64(21);
            let mut config = tiny_config();
            config.num_steps = 20;
            let sup = Supervision {
                recorder: rec.map(|r| r as &dyn Recorder),
                span: SpanCtx::root(21, 0),
                minutes_per_step: 0.01,
                ..Supervision::none()
            };
            let report = train_supervised(&config, &train_ds, &val_ds, &mut rng, &sup).unwrap();
            let weight_bits: Vec<u64> = report
                .model
                .params
                .flat()
                .iter()
                .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
                .collect();
            (weight_bits, report.lcurve.final_losses().unwrap())
        };
        let plain = run(None);
        let rec = MemoryRecorder::new();
        let observed = run(Some(&rec));
        assert_eq!(plain, observed, "telemetry changed the trained weights");
        let snap = rec.snapshot();
        assert_eq!(snap.counter(dphpo_obs::names::C_STEPS), 20);
        assert!(
            snap.events.iter().filter(|e| e.name == dphpo_obs::names::TRAIN_STEP).count() == 20
        );
        assert!(snap.events.iter().any(|e| e.name == dphpo_obs::names::LCURVE_ROW));
        assert!(snap.gauges.iter().any(|(n, g)| n == dphpo_obs::names::G_TAPE_NODES && g.max > 0.0));
    }

    #[test]
    fn empty_validation_is_rejected() {
        let (train_ds, _) = tiny_data(7);
        let empty = Dataset { cell: train_ds.cell, species: train_ds.species.clone(), frames: vec![] };
        let mut rng = StdRng::seed_from_u64(8);
        assert!(train(&tiny_config(), &train_ds, &empty, &mut rng).is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (train_ds, val_ds) = tiny_data(9);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut config = tiny_config();
            config.num_steps = 20;
            let report = train(&config, &train_ds, &val_ds, &mut rng).unwrap();
            report.lcurve.final_losses().unwrap()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn adam_moves_parameters_toward_gradient_descent() {
        let mut adam = Adam::new(&[Shape::D1(2)]);
        // Minimise f(w) = w² with constant gradient queries.
        let mut params_holder = {
            let (train_ds, _) = tiny_data(13);
            let mut rng = StdRng::seed_from_u64(14);
            DnnpModel::new(tiny_config(), &train_ds, &mut rng).unwrap()
        };
        // Use the first parameter tensor as a stand-in container: check that
        // a positive gradient lowers the value.
        let before = params_holder.params.flat()[0].data()[0];
        let shapes: Vec<Shape> = params_holder.params.flat().iter().map(|t| t.shape()).collect();
        let mut full_adam = Adam::new(&shapes);
        let grads: Vec<Tensor> = shapes
            .iter()
            .map(|&s| {
                let mut t = Tensor::zeros(s);
                t.data_mut().iter_mut().for_each(|v| *v = 1.0);
                t
            })
            .collect();
        full_adam.step(&mut params_holder.params, &grads, 0.01);
        let after = params_holder.params.flat()[0].data()[0];
        assert!(after < before, "positive gradient must decrease weight");
        let _ = &mut adam; // silence unused for the simple state
    }
}
