//! # dphpo-dnnp
//!
//! A deep neural network interatomic potential (DNNP) trainer — the
//! substitute for DeePMD-kit v2.1.4 in this reproduction.
//!
//! The model is the radial (`se_e2_r`) flavour of DeepPot-SE: a smooth
//! switching function `s(r; rcut_smth, rcut)` feeds per-neighbor-species
//! embedding networks whose outputs are pooled per atom into a descriptor,
//! a fitting network maps descriptors to per-atom energies, the total
//! energy is their sum, and forces are the exact analytic gradient
//! `F = −∂E/∂x` obtained through `dphpo-autograd`. Training minimises
//! DeePMD's prefactor-weighted energy+force loss (force-dominated early,
//! energy-weighted late) under an exponentially decaying learning rate with
//! optional by-worker scaling, using Adam and simulated 6-way synchronous
//! data parallelism.
//!
//! Artifacts mirror the paper's workflow: configuration round-trips through
//! a DeePMD-shaped `input.json` ([`config::TrainConfig`], [`json::Json`])
//! and training emits an `lcurve.out`-style learning curve
//! ([`lcurve::Lcurve`]) whose last `rmse_e_val`/`rmse_f_val` row is the EA's
//! two-objective fitness.

pub mod activation;
pub mod checkpoint;
pub mod config;
pub mod deploy;
pub mod descriptor;
pub mod json;
pub mod lcurve;
pub mod loss;
pub mod lr;
pub mod model;
pub mod population;
pub mod supervise;
pub mod trainer;

pub use activation::Activation;
pub use config::{LrScaling, TrainConfig};
pub use descriptor::{
    switching_scalar, switching_scalar_deriv, BatchCache, DescriptorStats, FrameCache, FramePairs,
};
pub use json::Json;
pub use lcurve::{Lcurve, LcurveRow};
pub use model::{forward_cached, forward_frame, DnnpModel, FrameRef};
pub use checkpoint::{load_model, save_model};
pub use deploy::{model_nve_step, trajectory_divergence, DeployedState};
pub use population::train_population;
pub use supervise::{AbortReason, Sentinel, Supervision};
pub use trainer::{
    step_budget, train, train_supervised, Adam, PhaseBudget, StepBudget, TrainReport, TrainRun,
    DIVERGENCE_LOSS_LIMIT,
};
