//! The five activation functions the paper's EA selects among for both the
//! descriptor (embedding) network and the fitting network.

use dphpo_autograd::{Tape, Unary, Var};

/// Activation function choice: `{relu, relu6, softplus, sigmoid, tanh}`,
/// in the paper's decoding order (§2.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at six.
    Relu6,
    /// Softplus `ln(1 + eˣ)`.
    Softplus,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent (the DeePMD default).
    Tanh,
}

impl Activation {
    /// All activations in decode order — the index of each entry is the
    /// value produced by the paper's `floor(gene) % 5` decoder.
    pub const ALL: [Activation; 5] = [
        Activation::Relu,
        Activation::Relu6,
        Activation::Softplus,
        Activation::Sigmoid,
        Activation::Tanh,
    ];

    /// DeePMD-style lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Relu6 => "relu6",
            Activation::Softplus => "softplus",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }

    /// Inverse of [`Activation::name`].
    pub fn from_name(name: &str) -> Option<Activation> {
        Activation::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Decode-order index.
    pub fn index(&self) -> usize {
        Activation::ALL.iter().position(|a| a == self).unwrap()
    }

    /// The tape-level unary op implementing this activation — used both
    /// for standalone application and as the fused-affine activation.
    pub fn unary(&self) -> Unary {
        match self {
            Activation::Relu => Unary::Relu,
            Activation::Relu6 => Unary::Relu6,
            Activation::Softplus => Unary::Softplus,
            Activation::Sigmoid => Unary::Sigmoid,
            Activation::Tanh => Unary::Tanh,
        }
    }

    /// Apply the activation to a taped variable.
    pub fn apply(&self, tape: &Tape, x: Var) -> Var {
        tape.unary(self.unary(), x)
    }

    /// Scalar evaluation (for tests and plots).
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::Softplus => x.max(0.0) + (-x.abs()).exp().ln_1p(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_autograd::Tensor;

    #[test]
    fn names_round_trip() {
        for a in Activation::ALL {
            assert_eq!(Activation::from_name(a.name()), Some(a));
        }
        assert_eq!(Activation::from_name("gelu"), None);
    }

    #[test]
    fn decode_order_matches_paper() {
        assert_eq!(Activation::ALL[0].name(), "relu");
        assert_eq!(Activation::ALL[4].name(), "tanh");
        assert_eq!(Activation::Tanh.index(), 4);
    }

    #[test]
    fn taped_apply_matches_scalar_eval() {
        let xs = [-3.0, -0.5, 0.0, 0.5, 3.0, 7.0];
        for a in Activation::ALL {
            let tape = Tape::new();
            let x = tape.constant(Tensor::vector(&xs));
            let y = a.apply(&tape, x);
            let values = tape.value(y);
            for (i, &xv) in xs.iter().enumerate() {
                assert!(
                    (values.data()[i] - a.eval(xv)).abs() < 1e-12,
                    "{} at {xv}",
                    a.name()
                );
            }
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(Activation::Relu.eval(-1.0), 0.0);
        assert_eq!(Activation::Relu6.eval(10.0), 6.0);
        assert!((Activation::Sigmoid.eval(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.eval(0.0)).abs() < 1e-12);
        assert!((Activation::Softplus.eval(0.0) - 2f64.ln()).abs() < 1e-12);
    }
}
