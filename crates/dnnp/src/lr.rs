//! Exponential learning-rate decay with by-worker scaling.

use crate::config::{LrScaling, TrainConfig};

/// Exponentially decaying learning-rate schedule, DeePMD-style:
/// `lr(t) = scale · start_lr · (stop_lr/start_lr)^(t/num_steps)`, so the
/// unscaled rate reaches exactly `stop_lr` at the final step. The worker
/// scaling multiplies the whole schedule, as Horovod-style LR scaling does.
#[derive(Clone, Copy, Debug)]
pub struct LrSchedule {
    start_lr: f64,
    decay: f64, // ln(stop/start) / num_steps
    scale: f64,
    num_steps: usize,
}

impl LrSchedule {
    /// Build from raw parameters.
    pub fn new(
        start_lr: f64,
        stop_lr: f64,
        num_steps: usize,
        scaling: LrScaling,
        workers: usize,
    ) -> Self {
        assert!(start_lr > 0.0 && stop_lr > 0.0 && num_steps > 0);
        LrSchedule {
            start_lr,
            decay: (stop_lr / start_lr).ln() / num_steps as f64,
            scale: scaling.factor(workers),
            num_steps,
        }
    }

    /// Build from a [`TrainConfig`].
    pub fn from_config(config: &TrainConfig) -> Self {
        LrSchedule::new(
            config.start_lr,
            config.stop_lr,
            config.num_steps,
            config.scale_by_worker,
            config.n_workers,
        )
    }

    /// The (scaled) learning rate at step `t`.
    pub fn lr(&self, step: usize) -> f64 {
        self.scale * self.start_lr * (self.decay * step as f64).exp()
    }

    /// The decay ratio `lr_unscaled(t)/start_lr ∈ (0, 1]`, which drives the
    /// loss-prefactor schedule.
    pub fn decay_ratio(&self, step: usize) -> f64 {
        (self.decay * step as f64).exp()
    }

    /// Total step count the schedule was built for.
    pub fn num_steps(&self) -> usize {
        self.num_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_start_and_stop() {
        let s = LrSchedule::new(0.01, 1e-6, 1000, LrScaling::None, 6);
        assert!((s.lr(0) - 0.01).abs() < 1e-15);
        assert!((s.lr(1000) - 1e-6).abs() / 1e-6 < 1e-9);
    }

    #[test]
    fn decay_is_monotonic() {
        let s = LrSchedule::new(0.01, 1e-8, 500, LrScaling::None, 1);
        let mut prev = f64::MAX;
        for t in (0..=500).step_by(50) {
            let lr = s.lr(t);
            assert!(lr < prev);
            prev = lr;
        }
    }

    #[test]
    fn worker_scaling_multiplies_schedule() {
        let base = LrSchedule::new(0.001, 1e-7, 100, LrScaling::None, 6);
        let lin = LrSchedule::new(0.001, 1e-7, 100, LrScaling::Linear, 6);
        let sq = LrSchedule::new(0.001, 1e-7, 100, LrScaling::Sqrt, 6);
        for t in [0, 10, 100] {
            assert!((lin.lr(t) - 6.0 * base.lr(t)).abs() < 1e-15);
            assert!((sq.lr(t) - 6f64.sqrt() * base.lr(t)).abs() < 1e-15);
        }
    }

    #[test]
    fn decay_ratio_is_unscaled() {
        let lin = LrSchedule::new(0.001, 1e-7, 100, LrScaling::Linear, 6);
        assert!((lin.decay_ratio(0) - 1.0).abs() < 1e-15);
        assert!((lin.decay_ratio(100) - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn from_config_uses_all_fields() {
        let config = TrainConfig {
            start_lr: 0.004,
            stop_lr: 1e-5,
            num_steps: 200,
            scale_by_worker: LrScaling::Sqrt,
            n_workers: 4,
            ..TrainConfig::default()
        };
        let s = LrSchedule::from_config(&config);
        assert!((s.lr(0) - 0.008).abs() < 1e-15); // 0.004 × √4
    }
}
