//! Cooperative training supervision: deadline budgets, external
//! cancellation, and divergence sentinels checked at step boundaries.
//!
//! The paper's campaign only *discovers* sick trainings after paying for
//! them in full — a diverged run burns its whole 2-hour allocation before
//! the `TimeoutError` fires. Treating failed trainings as first-class,
//! early-terminated evaluations is standard HPO practice (Diaz et al.);
//! this module gives the trainer the hooks to do it:
//!
//! * a **divergence sentinel** ([`Sentinel`]): abort as soon as the loss
//!   goes non-finite, crosses an absolute ceiling, or explodes past a
//!   configurable factor of its initial value;
//! * a **deadline budget**: the scheduler's simulated per-task limit,
//!   converted to a steps budget via the cost model's minutes-per-step,
//!   checked before every step so the job stops *at* the wall instead of
//!   being charged for crossing it;
//! * **external cancellation**: a cheap `is-cancelled` probe (backed by the
//!   scheduler's `CancelToken`) polled at step boundaries, so a superseded
//!   speculative attempt stops within one check interval;
//! * **progress heartbeats**: periodic `(done, projected)` simulated-minute
//!   reports the scheduler's supervision loop consumes.
//!
//! All hooks are optional; [`Supervision::none`] reproduces the plain
//! training loop bit-for-bit (the step-boundary checks consume no
//! randomness, so the rng stream — and therefore every trained weight —
//! is untouched by supervision).

use crate::trainer::DIVERGENCE_LOSS_LIMIT;
use dphpo_obs::{Recorder, SpanCtx};

/// Why a supervised training run stopped before completing its steps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AbortReason {
    /// The divergence sentinel fired: non-finite loss/gradients/weights,
    /// or the loss crossed an absolute or relative ceiling.
    Diverged {
        /// Step at which divergence was detected (0-based).
        step: usize,
        /// The offending loss value (may be `NaN`/`inf`).
        loss: f64,
    },
    /// The simulated-clock deadline budget ran out.
    Deadline {
        /// First step that would have crossed the budget.
        step: usize,
        /// Simulated minutes consumed when the budget fired.
        sim_minutes: f64,
    },
    /// The external cancellation probe returned true (e.g. a speculative
    /// twin already produced this task's result).
    Cancelled {
        /// Step at which cancellation was observed.
        step: usize,
    },
}

/// Divergence thresholds checked every step.
#[derive(Clone, Copy, Debug)]
pub struct Sentinel {
    /// Absolute loss ceiling; values beyond it are irrecoverable even when
    /// still finite.
    pub loss_limit: f64,
    /// Relative ceiling: abort once the loss exceeds
    /// `explosion_factor ×` the first step's loss. `INFINITY` disables the
    /// relative check (the plain, pre-supervision behaviour).
    pub explosion_factor: f64,
}

impl Default for Sentinel {
    fn default() -> Self {
        // Absolute check only — identical to the historical trainer.
        Sentinel { loss_limit: DIVERGENCE_LOSS_LIMIT, explosion_factor: f64::INFINITY }
    }
}

impl Sentinel {
    /// The supervised-runtime sentinel: absolute ceiling plus a 10⁶×
    /// explosion factor relative to the initial loss, catching runaway
    /// trainings several steps before they reach the absolute limit.
    pub fn supervised() -> Self {
        Sentinel { loss_limit: DIVERGENCE_LOSS_LIMIT, explosion_factor: 1e6 }
    }

    /// True if `loss` (at `step`, with `initial` the first step's loss)
    /// should abort training.
    pub fn fires(&self, loss: f64, initial: Option<f64>) -> bool {
        if !loss.is_finite() || loss > self.loss_limit {
            return true;
        }
        match initial {
            Some(first) if first.is_finite() && first > 0.0 => {
                loss > self.explosion_factor * first
            }
            _ => false,
        }
    }
}

/// Supervision hooks threaded into [`crate::trainer::train_supervised`].
///
/// All checks run at step boundaries and consume no randomness, so two
/// runs with the same seed produce bit-identical weights whether or not
/// supervision is attached — only *how far* an aborted run gets differs.
pub struct Supervision<'a> {
    /// External cancellation probe, polled every `check_every` steps.
    pub cancelled: Option<&'a (dyn Fn() -> bool + 'a)>,
    /// Simulated-minutes budget for the whole training (the scheduler's
    /// per-task timeout). `None` disables the deadline check.
    pub deadline_minutes: Option<f64>,
    /// Simulated minutes one optimisation step costs (deterministic, from
    /// the cost model's mean — sampling here would perturb the rng stream).
    pub minutes_per_step: f64,
    /// Progress heartbeat `(done_minutes, projected_total_minutes)`,
    /// emitted every `heartbeat_every` steps.
    pub heartbeat: Option<&'a (dyn Fn(f64, f64) + 'a)>,
    /// Steps between heartbeats (0 disables them).
    pub heartbeat_every: usize,
    /// Steps between cancellation/deadline checks (min 1).
    pub check_every: usize,
    /// Divergence thresholds (checked every step regardless of
    /// `check_every` — a non-finite loss poisons everything after it).
    pub sentinel: Sentinel,
    /// Telemetry sink. `None` (the default) keeps the training loop's
    /// disabled path at a single branch; when set and
    /// [`Recorder::enabled`], the trainer emits per-step spans, loss/LR/
    /// gradient-norm histograms, tape arena gauges, and streamed
    /// learning-curve rows. Recording consumes no randomness, so weights
    /// stay bit-identical with telemetry on or off.
    pub recorder: Option<&'a dyn Recorder>,
    /// Span identity `(seed, run, gen, task, attempt)` for emitted events;
    /// ignored when `recorder` is `None`.
    pub span: SpanCtx,
}

impl Supervision<'static> {
    /// No supervision: plain training (the historical behaviour).
    pub fn none() -> Self {
        Supervision {
            cancelled: None,
            deadline_minutes: None,
            minutes_per_step: 0.0,
            heartbeat: None,
            heartbeat_every: 0,
            check_every: 1,
            sentinel: Sentinel::default(),
            recorder: None,
            span: SpanCtx::default(),
        }
    }
}

impl<'a> Supervision<'a> {
    /// True if the external probe says this run is cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.is_some_and(|probe| probe())
    }

    /// The recorder when attached *and* enabled — the single branch the
    /// trainer's hot path pays when telemetry is off.
    pub fn obs(&self) -> Option<&'a dyn Recorder> {
        self.recorder.filter(|r| r.enabled())
    }

    /// Simulated minutes consumed after `steps` completed steps.
    pub fn sim_minutes(&self, steps: usize) -> f64 {
        steps as f64 * self.minutes_per_step
    }

    /// True if starting step `step` (0-based) would cross the deadline:
    /// the budget must cover the step about to be paid for.
    pub fn deadline_fires(&self, step: usize) -> bool {
        match self.deadline_minutes {
            Some(limit) => self.sim_minutes(step + 1) > limit,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sentinel_matches_legacy_thresholds() {
        let s = Sentinel::default();
        assert!(!s.fires(1e11, Some(1e-3)), "legacy sentinel has no relative check");
        assert!(s.fires(1e13, Some(1e-3)));
        assert!(s.fires(f64::NAN, None));
        assert!(s.fires(f64::INFINITY, None));
    }

    #[test]
    fn supervised_sentinel_adds_relative_explosion_check() {
        let s = Sentinel::supervised();
        assert!(s.fires(2e3, Some(1e-3)), "1e6x explosion over initial loss");
        assert!(!s.fires(0.5, Some(1e-3)), "slow growth is not divergence");
        // Degenerate initial losses disable the relative check.
        assert!(!s.fires(1e3, Some(0.0)));
        assert!(!s.fires(1e3, Some(f64::INFINITY)));
    }

    #[test]
    fn deadline_fires_on_the_step_that_would_cross_the_budget() {
        let sup = Supervision {
            deadline_minutes: Some(10.0),
            minutes_per_step: 1.0,
            ..Supervision::none()
        };
        assert!(!sup.deadline_fires(8), "step 9/10 still inside the budget");
        assert!(!sup.deadline_fires(9), "step 10/10 exactly exhausts it");
        assert!(sup.deadline_fires(10), "step 11 crosses the wall");
        assert_eq!(sup.sim_minutes(5), 5.0);
    }

    #[test]
    fn unsupervised_probes_are_inert() {
        let sup = Supervision::none();
        assert!(!sup.is_cancelled());
        assert!(!sup.deadline_fires(usize::MAX - 1));
    }
}
