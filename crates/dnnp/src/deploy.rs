//! Deploying a trained potential: run molecular dynamics *with the learned
//! model* supplying energies and forces — the entire purpose of a DNNP
//! (the paper's introduction: "quantum mechanical accuracy at speedups of
//! 10000×" for dynamical simulation).
//!
//! The integrators mirror `dphpo-md`'s (velocity Verlet, BAOAB Langevin)
//! but take their forces from [`DnnpModel::predict`]. §3.2 of the paper
//! explains why force accuracy gates this use: "force errors compound as
//! the time series progresses", which [`trajectory_divergence`] quantifies
//! directly.

use rand::Rng;

use dphpo_md::integrate::{ACC_CONV, KE_CONV};
use dphpo_md::potential::KB_EV;
use dphpo_md::{Cell, MeltPotential, Species};

use crate::model::DnnpModel;

/// Mutable MD state driven by a learned potential.
#[derive(Clone, Debug)]
pub struct DeployedState {
    /// Wrapped positions (Å).
    pub positions: Vec<[f64; 3]>,
    /// Velocities (Å/fs).
    pub velocities: Vec<[f64; 3]>,
    /// Current model forces (eV/Å).
    pub forces: Vec<[f64; 3]>,
    /// Current model energy (eV).
    pub energy: f64,
}

impl DeployedState {
    /// Initialise from positions and velocities; forces come from the model.
    pub fn new(
        model: &DnnpModel,
        positions: Vec<[f64; 3]>,
        velocities: Vec<[f64; 3]>,
    ) -> Self {
        let (energy, forces) = model.predict(&positions);
        DeployedState { positions, velocities, forces, energy }
    }

    /// Kinetic energy in eV for the model's species list.
    pub fn kinetic_energy(&self, species: &[Species]) -> f64 {
        self.velocities
            .iter()
            .zip(species.iter())
            .map(|(v, s)| 0.5 * s.mass() * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]) * KE_CONV)
            .sum()
    }

    /// Instantaneous temperature in K.
    pub fn temperature(&self, species: &[Species]) -> f64 {
        2.0 * self.kinetic_energy(species) / (3.0 * species.len() as f64 * KB_EV)
    }

    /// Total (kinetic + model potential) energy in eV.
    pub fn total_energy(&self, species: &[Species]) -> f64 {
        self.kinetic_energy(species) + self.energy
    }
}

/// One NVE velocity-Verlet step under the learned potential (`dt` in fs).
#[allow(clippy::needless_range_loop)] // `i` walks four parallel per-atom arrays
pub fn model_nve_step(
    model: &DnnpModel,
    cell: &Cell,
    species: &[Species],
    state: &mut DeployedState,
    dt: f64,
) {
    let n = species.len();
    for i in 0..n {
        let inv_m = ACC_CONV / species[i].mass();
        for k in 0..3 {
            state.velocities[i][k] += 0.5 * dt * state.forces[i][k] * inv_m;
            state.positions[i][k] += dt * state.velocities[i][k];
        }
        state.positions[i] = cell.wrap(state.positions[i]);
    }
    let (energy, forces) = model.predict(&state.positions);
    state.energy = energy;
    state.forces = forces;
    for i in 0..n {
        let inv_m = ACC_CONV / species[i].mass();
        for k in 0..3 {
            state.velocities[i][k] += 0.5 * dt * state.forces[i][k] * inv_m;
        }
    }
}

/// Divergence between a model-driven trajectory and the reference-potential
/// trajectory started from identical initial conditions: RMS per-atom
/// displacement (Å) after `steps` NVE steps — the paper's "force errors
/// compound as the time series progresses" made measurable.
#[allow(clippy::too_many_arguments)]
pub fn trajectory_divergence(
    model: &DnnpModel,
    reference: &MeltPotential,
    cell: &Cell,
    species: &[Species],
    positions: Vec<[f64; 3]>,
    velocities: Vec<[f64; 3]>,
    dt: f64,
    steps: usize,
) -> f64 {
    let mut model_state = DeployedState::new(model, positions.clone(), velocities.clone());
    let mut ref_state = dphpo_md::MdState {
        positions,
        velocities,
        forces: vec![[0.0; 3]; species.len()],
        potential_energy: 0.0,
    };
    let (e, f) = reference.energy_forces(cell, species, &ref_state.positions);
    ref_state.potential_energy = e;
    ref_state.forces = f;

    for _ in 0..steps {
        model_nve_step(model, cell, species, &mut model_state, dt);
        dphpo_md::integrate::nve_step(cell, reference, species, &mut ref_state, dt);
    }
    let mut sq = 0.0;
    for (a, b) in model_state.positions.iter().zip(ref_state.positions.iter()) {
        let d = cell.min_image(*b, *a);
        sq += d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    }
    (sq / species.len() as f64).sqrt()
}

/// Draw Maxwell–Boltzmann velocities (re-exported convenience wrapper so a
/// deployment needs only this module).
pub fn thermal_velocities<R: Rng + ?Sized>(
    species: &[Species],
    temperature: f64,
    rng: &mut R,
) -> Vec<[f64; 3]> {
    dphpo_md::integrate::maxwell_boltzmann(species, temperature, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::trainer::train;
    use dphpo_md::generate::{generate_dataset, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model() -> (DnnpModel, dphpo_md::Dataset) {
        let mut rng = StdRng::seed_from_u64(31);
        let gen = GenConfig {
            n_atoms: 10,
            box_len: 9.0,
            n_frames: 12,
            equil_steps: 120,
            sample_every: 4,
            ..GenConfig::tiny()
        };
        let ds = generate_dataset(&gen, &mut rng);
        let (train_ds, val_ds) = ds.clone().split(0.25, &mut rng);
        let config = TrainConfig {
            rcut: 5.5,
            rcut_smth: 2.0,
            start_lr: 0.01,
            stop_lr: 1e-3,
            embedding_neurons: vec![5, 4],
            fitting_neurons: vec![8],
            num_steps: 120,
            disp_freq: 120,
            val_max_frames: 2,
            batch_per_worker: 1,
            n_workers: 2,
            ..TrainConfig::default()
        };
        let report = train(&config, &train_ds, &val_ds, &mut rng).unwrap();
        assert!(!report.diverged);
        (report.model, ds)
    }

    #[test]
    fn deployed_md_is_stable_and_near_conservative() {
        let (model, ds) = trained_model();
        let mut rng = StdRng::seed_from_u64(32);
        let velocities = thermal_velocities(&ds.species, 300.0, &mut rng);
        let mut state =
            DeployedState::new(&model, ds.frames[0].positions.clone(), velocities);
        let e0 = state.total_energy(&ds.species);
        for _ in 0..60 {
            model_nve_step(&model, &ds.cell, &ds.species, &mut state, 0.5);
        }
        let e1 = state.total_energy(&ds.species);
        // The learned surface is smooth, so NVE drift stays modest relative
        // to the kinetic scale even for a briefly-trained model.
        let ke = state.kinetic_energy(&ds.species).max(0.1);
        assert!(
            (e1 - e0).abs() < 2.0 * ke,
            "model-driven NVE exploded: drift {} vs KE {ke}",
            e1 - e0
        );
        // And every position stayed wrapped and finite.
        for p in &state.positions {
            for c in p.iter() {
                assert!(c.is_finite() && (0.0..ds.cell.length()).contains(c));
            }
        }
    }

    #[test]
    fn trajectory_divergence_grows_with_horizon() {
        let (model, ds) = trained_model();
        let mut rng = StdRng::seed_from_u64(33);
        let velocities = thermal_velocities(&ds.species, 300.0, &mut rng);
        let reference = MeltPotential::default();
        let run = |steps| {
            trajectory_divergence(
                &model,
                &reference,
                &ds.cell,
                &ds.species,
                ds.frames[0].positions.clone(),
                velocities.clone(),
                0.5,
                steps,
            )
        };
        let short = run(5);
        let long = run(40);
        assert!(short.is_finite() && long.is_finite());
        assert!(
            long >= short,
            "divergence should compound over time: {short} -> {long}"
        );
    }

    #[test]
    fn deployed_state_reports_temperature() {
        let (model, ds) = trained_model();
        let mut rng = StdRng::seed_from_u64(34);
        let velocities = thermal_velocities(&ds.species, 498.0, &mut rng);
        let state = DeployedState::new(&model, ds.frames[0].positions.clone(), velocities);
        let t = state.temperature(&ds.species);
        assert!(t > 100.0 && t < 1200.0, "implausible temperature {t}");
    }
}
