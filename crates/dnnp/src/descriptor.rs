//! The smooth radial descriptor (DeepPot-SE, `se_e2_r` flavour): the
//! switching function `s(r; rcut_smth, rcut)` and the per-frame pair
//! bookkeeping needed to evaluate it inside the autograd tape.

use std::rc::Rc;

use dphpo_autograd::{Tape, Tensor, Var};
use dphpo_md::{pairs_brute_force, Cell};

/// Scalar switching function, DeePMD-kit's smooth-edition weight:
///
/// ```text
/// s(r) = 1/r                                   r < rcut_smth
/// s(r) = (1/r)·[u³(−6u² + 15u − 10) + 1]       rcut_smth ≤ r < rcut
/// s(r) = 0                                     r ≥ rcut
/// u = (r − rcut_smth)/(rcut − rcut_smth)
/// ```
///
/// C²-continuous at both edges, which keeps forces (first derivatives) and
/// force-loss gradients (second derivatives) smooth.
pub fn switching_scalar(r: f64, rcut_smth: f64, rcut: f64) -> f64 {
    if r >= rcut {
        return 0.0;
    }
    if r < rcut_smth {
        return 1.0 / r;
    }
    let u = (r - rcut_smth) / (rcut - rcut_smth);
    (1.0 / r) * (u * u * u * (-6.0 * u * u + 15.0 * u - 10.0) + 1.0)
}

/// Analytic derivative `ds/dr` of [`switching_scalar`].
pub fn switching_scalar_deriv(r: f64, rcut_smth: f64, rcut: f64) -> f64 {
    if r >= rcut {
        return 0.0;
    }
    if r < rcut_smth {
        return -1.0 / (r * r);
    }
    let d = rcut - rcut_smth;
    let u = (r - rcut_smth) / d;
    let p = u * u * u * (-6.0 * u * u + 15.0 * u - 10.0) + 1.0;
    // p'(u) = −30 u² (u − 1)².
    let dp = -30.0 * u * u * (u - 1.0) * (u - 1.0);
    dp / (r * d) - p / (r * r)
}

/// Taped version of [`switching_scalar`], composed entirely from
/// double-differentiable primitives (see `dphpo-autograd`).
pub fn switching(tape: &Tape, r: Var, rcut_smth: f64, rcut: f64) -> Var {
    assert!(rcut_smth < rcut, "rcut_smth must lie below rcut");
    let u = tape.clamp01(tape.scale(tape.add_scalar(r, -rcut_smth), 1.0 / (rcut - rcut_smth)));
    let u2 = tape.square(u);
    let u3 = tape.mul(u2, u);
    // poly = 1 + u³(−6u² + 15u − 10)
    let inner = tape.add_scalar(tape.add(tape.scale(u2, -6.0), tape.scale(u, 15.0)), -10.0);
    let poly = tape.add_scalar(tape.mul(u3, inner), 1.0);
    tape.mul(tape.recip(r), poly)
}

/// Pair bookkeeping for one frame at a fixed cutoff, grouped by neighbor
/// species so each embedding net sees only its own pairs.
#[derive(Clone, Debug)]
pub struct SpeciesPairs {
    /// Indices into the frame's directed pair list.
    pub pair_idx: Rc<[usize]>,
    /// Center atom of each selected pair (for the scatter-add pooling).
    pub centers: Rc<[usize]>,
}

/// All directed pairs of one frame within `rcut`, plus the constant
/// minimum-image shifts that make displacements differentiable functions of
/// the positions.
#[derive(Clone, Debug)]
pub struct FramePairs {
    /// Center atom per pair.
    pub centers: Rc<[usize]>,
    /// Neighbor atom per pair.
    pub neighbors: Rc<[usize]>,
    /// Constant shift so `disp_p = x[j_p] − x[i_p] + shift_p` is the
    /// minimum-image displacement (row-major `[P, 3]`).
    pub shifts: Tensor,
    /// Pair subsets per neighbor species.
    pub per_species: Vec<SpeciesPairs>,
    /// Number of directed pairs.
    pub n_pairs: usize,
}

impl FramePairs {
    /// Build the pair structure for a frame. `species_idx` gives each
    /// atom's dense species index; `n_species` the species count.
    pub fn build(
        cell: &Cell,
        species_idx: &[usize],
        positions: &[[f64; 3]],
        rcut: f64,
        n_species: usize,
    ) -> Self {
        let pairs = pairs_brute_force(cell, positions, rcut);
        let n_pairs = pairs.len();
        let mut centers = Vec::with_capacity(n_pairs);
        let mut neighbors = Vec::with_capacity(n_pairs);
        let mut shifts = Vec::with_capacity(n_pairs * 3);
        let mut by_species: Vec<(Vec<usize>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); n_species];
        for (p, pair) in pairs.iter().enumerate() {
            centers.push(pair.i);
            neighbors.push(pair.j);
            #[allow(clippy::needless_range_loop)] // three parallel coordinate arrays
            for k in 0..3 {
                // disp = (x_j − x_i) + shift  ⇒  shift = disp − (x_j − x_i).
                shifts.push(pair.disp[k] - (positions[pair.j][k] - positions[pair.i][k]));
            }
            let t = species_idx[pair.j];
            by_species[t].0.push(p);
            by_species[t].1.push(pair.i);
        }
        FramePairs {
            centers: Rc::from(centers),
            neighbors: Rc::from(neighbors),
            shifts: Tensor::matrix(n_pairs, 3, shifts),
            per_species: by_species
                .into_iter()
                .map(|(pair_idx, centers)| SpeciesPairs {
                    pair_idx: Rc::from(pair_idx),
                    centers: Rc::from(centers),
                })
                .collect(),
            n_pairs,
        }
    }

    /// Taped distances `r_p` for all pairs, as a differentiable function of
    /// the positions variable `x` (`[n, 3]`).
    pub fn distances(&self, tape: &Tape, x: Var) -> Var {
        let xj = tape.gather_rows(x, Rc::clone(&self.neighbors));
        let xi = tape.gather_rows(x, Rc::clone(&self.centers));
        let shift = tape.constant(self.shifts.clone());
        let disp = tape.add(tape.sub(xj, xi), shift);
        tape.sqrt(tape.rowwise_dot(disp, disp))
    }
}

/// Per-neighbor-species standardisation statistics for the descriptor input
/// (DeePMD's `davg`/`dstd`) plus the mean neighbor count used to normalise
/// the pooled embedding.
#[derive(Clone, Debug)]
pub struct DescriptorStats {
    /// Mean of `s(r)` per neighbor species.
    pub davg: Vec<f64>,
    /// Standard deviation of `s(r)` per neighbor species (≥ small floor).
    pub dstd: Vec<f64>,
    /// Average per-atom neighbor count per neighbor species (≥ 1).
    pub avg_neighbors: Vec<f64>,
}

impl DescriptorStats {
    /// Estimate statistics from sample frames.
    pub fn compute(
        cell: &Cell,
        species_idx: &[usize],
        frames: &[&[[f64; 3]]],
        rcut: f64,
        rcut_smth: f64,
        n_species: usize,
    ) -> Self {
        let n_atoms = species_idx.len();
        let mut sums = vec![0.0f64; n_species];
        let mut sq_sums = vec![0.0f64; n_species];
        let mut counts = vec![0usize; n_species];
        for positions in frames {
            for pair in pairs_brute_force(cell, positions, rcut) {
                let s = switching_scalar(pair.r, rcut_smth, rcut);
                let t = species_idx[pair.j];
                sums[t] += s;
                sq_sums[t] += s * s;
                counts[t] += 1;
            }
        }
        let mut davg = vec![0.0; n_species];
        let mut dstd = vec![1.0; n_species];
        let mut avg_neighbors = vec![1.0; n_species];
        for t in 0..n_species {
            if counts[t] > 0 {
                let n = counts[t] as f64;
                davg[t] = sums[t] / n;
                let var = (sq_sums[t] / n - davg[t] * davg[t]).max(0.0);
                dstd[t] = var.sqrt().max(1e-3);
                avg_neighbors[t] =
                    (n / (frames.len() as f64 * n_atoms as f64)).max(1.0);
            }
        }
        DescriptorStats { davg, dstd, avg_neighbors }
    }
}

/// Weight-independent per-frame descriptor values for one neighbor
/// species: everything the training step needs that does *not* change as
/// the network learns. Caching this removes the geometry subgraph (pair
/// distances, switching function, and their double-backward inflation)
/// from every training step — the forces are assembled as
/// `F = Jᵀ·(∂E/∂s)` with the constant sparse Jacobian `J = ds/dx` stored
/// here as per-pair vectors.
#[derive(Clone, Debug)]
pub struct CachedSpecies {
    /// Standardised embedding inputs `(s − davg)/dstd`, shape `[Pt, 1]`.
    pub z: Tensor,
    /// Raw switching values `s(r)`, shape `[Pt]`.
    pub s: Tensor,
    /// Per-pair Jacobian rows `s'(r)·r̂` (`∂s_p/∂x_{j_p}`; the center atom
    /// gets the negative), shape `[Pt, 3]`.
    pub jac: Tensor,
    /// Center atom per pair.
    pub centers: Rc<[usize]>,
    /// Neighbor atom per pair.
    pub neighbors: Rc<[usize]>,
}

/// All cached descriptor data for one frame at one (rcut, rcut_smth).
/// Per-species accumulation bucket while building a [`FrameCache`]:
/// `(switching values, switching derivs, displacement jacobian, centers,
/// neighbors)` for every pair whose neighbor has that species.
type SpeciesBucket = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<usize>, Vec<usize>);

#[derive(Clone, Debug)]
pub struct FrameCache {
    /// Per-neighbor-species caches.
    pub species: Vec<CachedSpecies>,
    /// Atoms in the frame.
    pub n_atoms: usize,
}

impl FrameCache {
    /// Precompute the cache for a frame.
    pub fn build(
        cell: &Cell,
        species_idx: &[usize],
        positions: &[[f64; 3]],
        rcut: f64,
        rcut_smth: f64,
        stats: &DescriptorStats,
        n_species: usize,
    ) -> Self {
        let pairs = pairs_brute_force(cell, positions, rcut);
        let mut buckets: Vec<SpeciesBucket> = (0..n_species).map(|_| Default::default()).collect();
        for pair in &pairs {
            let t = species_idx[pair.j];
            let s = switching_scalar(pair.r, rcut_smth, rcut);
            let ds = switching_scalar_deriv(pair.r, rcut_smth, rcut);
            let (z, sv, jac, centers, neighbors) = &mut buckets[t];
            z.push((s - stats.davg[t]) / stats.dstd[t]);
            sv.push(s);
            for k in 0..3 {
                jac.push(ds * pair.disp[k] / pair.r);
            }
            centers.push(pair.i);
            neighbors.push(pair.j);
        }
        FrameCache {
            species: buckets
                .into_iter()
                .map(|(z, s, jac, centers, neighbors)| {
                    let pt = s.len();
                    CachedSpecies {
                        z: Tensor::matrix(pt, 1, z),
                        s: Tensor::new(dphpo_autograd::Shape::D1(pt), s),
                        jac: Tensor::matrix(pt, 3, jac),
                        centers: Rc::from(centers),
                        neighbors: Rc::from(neighbors),
                    }
                })
                .collect(),
            n_atoms: species_idx.len(),
        }
    }
}

/// Merge per-frame caches into one batch cache: pair rows are
/// concatenated and atom indices offset by each frame's block, so a single
/// tape evaluates the whole batch (one graph instead of B graphs — the
/// training loop's main throughput lever on an allocation-bound workload).
/// All frames must have the same atom count.
///
/// One-shot convenience over [`BatchCache`]; a caller that re-merges every
/// step (e.g. the training loop's memo-miss path) should hold a
/// [`BatchCache`] instead so the merge reuses its buffers.
pub fn merge_frame_caches(caches: &[&FrameCache]) -> FrameCache {
    BatchCache::new().merge(caches)
}

/// A reusable batch merger: the structure-of-arrays buffers behind the
/// previous merge are reclaimed whenever the caller has dropped its handles
/// (refcount back to one), so a training loop that re-merges a fresh batch
/// composition every step runs the float columns allocation-free in steady
/// state. Each column is filled with bulk block copies; the atom-index
/// columns get one branch-free offset sweep per frame block instead of a
/// per-element map.
///
/// The merged values are bit-identical to [`merge_frame_caches`] output —
/// the merge only moves numbers, in the same frame-major order.
#[derive(Default)]
pub struct BatchCache {
    /// The previous merge, kept so its buffers can be reclaimed.
    prev: Option<FrameCache>,
}

impl BatchCache {
    /// A merger with no reusable state yet.
    pub fn new() -> Self {
        BatchCache::default()
    }

    /// Take a float buffer back from `t` (no copy) when nothing else holds
    /// it, cleared and with room for `cap` elements.
    fn reclaim(t: Tensor, cap: usize) -> Vec<f64> {
        let mut v = t.try_unique_data().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    }

    /// Merge per-frame caches (see [`merge_frame_caches`] for semantics),
    /// reusing the previous merge's buffers where possible.
    pub fn merge(&mut self, caches: &[&FrameCache]) -> FrameCache {
        assert!(!caches.is_empty(), "cannot merge zero caches");
        let n_atoms = caches[0].n_atoms;
        let n_species = caches[0].species.len();
        assert!(
            caches.iter().all(|c| c.n_atoms == n_atoms && c.species.len() == n_species),
            "merge requires homogeneous frames"
        );
        let mut reclaimed: Vec<Option<CachedSpecies>> = match self.prev.take() {
            Some(c) if c.species.len() == n_species => {
                c.species.into_iter().map(Some).collect()
            }
            _ => (0..n_species).map(|_| None).collect(),
        };
        let species: Vec<CachedSpecies> = (0..n_species)
            .map(|t| {
                // Exact pair total first, so every buffer is sized once.
                let pt: usize = caches.iter().map(|c| c.species[t].s.len()).sum();
                let (mut z, mut s, mut jac) = match reclaimed[t].take() {
                    Some(o) => (
                        Self::reclaim(o.z, pt),
                        Self::reclaim(o.s, pt),
                        Self::reclaim(o.jac, pt * 3),
                    ),
                    None => (
                        Vec::with_capacity(pt),
                        Vec::with_capacity(pt),
                        Vec::with_capacity(pt * 3),
                    ),
                };
                let mut centers = Vec::with_capacity(pt);
                let mut neighbors = Vec::with_capacity(pt);
                for (b, cache) in caches.iter().enumerate() {
                    let sp = &cache.species[t];
                    z.extend_from_slice(sp.z.data());
                    s.extend_from_slice(sp.s.data());
                    jac.extend_from_slice(sp.jac.data());
                    // Bulk copy, then one in-place offset sweep over the
                    // new block (vectorises; no per-element closure).
                    let offset = b * n_atoms;
                    let c0 = centers.len();
                    centers.extend_from_slice(&sp.centers);
                    neighbors.extend_from_slice(&sp.neighbors);
                    for v in &mut centers[c0..] {
                        *v += offset;
                    }
                    for v in &mut neighbors[c0..] {
                        *v += offset;
                    }
                }
                CachedSpecies {
                    z: Tensor::matrix(pt, 1, z),
                    s: Tensor::new(dphpo_autograd::Shape::D1(pt), s),
                    jac: Tensor::matrix(pt, 3, jac),
                    centers: Rc::from(centers),
                    neighbors: Rc::from(neighbors),
                }
            })
            .collect();
        let merged = FrameCache { species, n_atoms: n_atoms * caches.len() };
        // Keep a shallow handle (Arc/Rc clones) so the next merge can
        // reclaim the buffers once the caller drops this result.
        self.prev = Some(merged.clone());
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_md::Species;

    #[test]
    fn switching_matches_piecewise_definition() {
        for (smth, cut) in [(2.0, 6.0), (0.5, 9.0), (4.0, 4.5)] {
            for r in [0.5, 1.0, 2.5, 4.2, 5.9, 6.0, 8.0] {
                let expected = switching_scalar(r, smth, cut);
                let tape = Tape::new();
                let rv = tape.constant(Tensor::vector(&[r]));
                let sv = switching(&tape, rv, smth, cut);
                let got = tape.value(sv).data()[0];
                assert!(
                    (got - expected).abs() < 1e-12,
                    "s({r}; {smth}, {cut}) = {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn switching_is_continuous_at_edges() {
        let (smth, cut) = (2.0, 6.0);
        let eps = 1e-7;
        let below = switching_scalar(smth - eps, smth, cut);
        let above = switching_scalar(smth + eps, smth, cut);
        assert!((below - above).abs() < 1e-5);
        let near_cut = switching_scalar(cut - eps, smth, cut);
        assert!(near_cut.abs() < 1e-5);
        assert_eq!(switching_scalar(cut, smth, cut), 0.0);
    }

    #[test]
    fn switching_derivative_vanishes_at_cutoff() {
        // C¹ continuity at rcut: finite-difference slope ≈ 0 near the edge.
        let (smth, cut) = (2.0, 6.0);
        let h = 1e-6;
        let d = (switching_scalar(cut - h, smth, cut) - switching_scalar(cut - 3.0 * h, smth, cut))
            / (2.0 * h);
        assert!(d.abs() < 1e-4, "slope at cutoff {d}");
    }

    #[test]
    fn switching_taped_gradient_matches_finite_difference() {
        let (smth, cut) = (2.0, 6.0);
        for r0 in [1.0, 3.0, 4.5, 5.5] {
            let tape = Tape::new();
            let r = tape.constant(Tensor::vector(&[r0]));
            let s = switching(&tape, r, smth, cut);
            let g = tape.grad(tape.sum_all(s), &[r])[0];
            let h = 1e-6;
            let fd = (switching_scalar(r0 + h, smth, cut) - switching_scalar(r0 - h, smth, cut))
                / (2.0 * h);
            assert!(
                (tape.value(g).data()[0] - fd).abs() < 1e-5,
                "ds/dr at {r0}"
            );
        }
    }

    fn toy_frame() -> (Cell, Vec<usize>, Vec<[f64; 3]>) {
        let cell = Cell::cubic(10.0);
        let species_idx = vec![
            Species::Al.index(),
            Species::Cl.index(),
            Species::Cl.index(),
            Species::K.index(),
        ];
        let positions = vec![
            [1.0, 1.0, 1.0],
            [3.0, 1.0, 1.0],
            [9.5, 1.0, 1.0], // neighbor of atom 0 across the boundary
            [5.0, 5.0, 5.0],
        ];
        (cell, species_idx, positions)
    }

    #[test]
    fn frame_pairs_group_by_species() {
        let (cell, species_idx, positions) = toy_frame();
        let fp = FramePairs::build(&cell, &species_idx, &positions, 3.0, 3);
        // Pairs within 3 Å: (0,1), (0,2) across the boundary, and reverses.
        assert_eq!(fp.n_pairs, 4);
        // Neighbor species Cl (index 2) holds both directed pairs from 0.
        assert_eq!(fp.per_species[Species::Cl.index()].pair_idx.len(), 2);
        assert_eq!(fp.per_species[Species::Al.index()].pair_idx.len(), 2);
        assert_eq!(fp.per_species[Species::K.index()].pair_idx.len(), 0);
    }

    #[test]
    fn taped_distances_match_minimum_image() {
        let (cell, species_idx, positions) = toy_frame();
        let fp = FramePairs::build(&cell, &species_idx, &positions, 3.0, 3);
        let tape = Tape::new();
        let flat: Vec<f64> = positions.iter().flatten().copied().collect();
        let x = tape.constant(Tensor::matrix(4, 3, flat));
        let r = fp.distances(&tape, x);
        let values = tape.value(r);
        for (p, &rv) in values.data().iter().enumerate() {
            let i = fp.centers[p];
            let j = fp.neighbors[p];
            let expected = cell.distance(positions[i], positions[j]);
            assert!((rv - expected).abs() < 1e-12, "pair {p} ({i},{j})");
        }
    }

    #[test]
    fn distances_are_differentiable_wrt_positions() {
        let (cell, species_idx, positions) = toy_frame();
        let fp = FramePairs::build(&cell, &species_idx, &positions, 3.0, 3);
        let tape = Tape::new();
        let flat: Vec<f64> = positions.iter().flatten().copied().collect();
        let x = tape.constant(Tensor::matrix(4, 3, flat.clone()));
        let y = tape.sum_all(fp.distances(&tape, x));
        let g = tape.grad(y, &[x])[0];
        // Finite-difference check on atom 0, x-component. Note: the pair
        // list and shifts are held fixed (valid for small perturbations).
        let h = 1e-6;
        let eval = |dx: f64| {
            let tape = Tape::new();
            let mut f = flat.clone();
            f[0] += dx;
            let x = tape.constant(Tensor::matrix(4, 3, f));
            tape.item(tape.sum_all(fp.distances(&tape, x)))
        };
        let fd = (eval(h) - eval(-h)) / (2.0 * h);
        assert!((tape.value(g).at(0, 0) - fd).abs() < 1e-5);
    }

    #[test]
    fn stats_reflect_data() {
        let (cell, species_idx, positions) = toy_frame();
        let frames: Vec<&[[f64; 3]]> = vec![&positions];
        let stats =
            DescriptorStats::compute(&cell, &species_idx, &frames, 3.0, 1.0, 3);
        // Cl neighbors exist → nonzero mean; K has none → defaults.
        assert!(stats.davg[Species::Cl.index()] > 0.0);
        assert_eq!(stats.davg[Species::K.index()], 0.0);
        assert_eq!(stats.dstd[Species::K.index()], 1.0);
        assert_eq!(stats.avg_neighbors[Species::K.index()], 1.0);
        assert!(stats.dstd.iter().all(|&s| s >= 1e-3));
    }

    #[test]
    fn switching_deriv_matches_finite_difference() {
        for (smth, cut) in [(2.0, 6.0), (0.5, 9.0)] {
            for r in [0.8, 1.9, 2.5, 4.0, 5.9, 7.0] {
                let h = 1e-6;
                let fd = (switching_scalar(r + h, smth, cut)
                    - switching_scalar(r - h, smth, cut))
                    / (2.0 * h);
                let an = switching_scalar_deriv(r, smth, cut);
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "s'({r}; {smth}, {cut}): {fd} vs {an}"
                );
            }
        }
        assert_eq!(switching_scalar_deriv(7.0, 2.0, 6.0), 0.0);
    }

    #[test]
    fn frame_cache_matches_direct_computation() {
        let (cell, species_idx, positions) = toy_frame();
        let (rcut, rcut_smth) = (8.0, 2.0);
        let frames: Vec<&[[f64; 3]]> = vec![&positions];
        let stats = DescriptorStats::compute(&cell, &species_idx, &frames, rcut, rcut_smth, 3);
        let cache =
            FrameCache::build(&cell, &species_idx, &positions, rcut, rcut_smth, &stats, 3);
        assert_eq!(cache.n_atoms, 4);
        let total_pairs: usize = cache.species.iter().map(|c| c.s.len()).sum();
        let fp = FramePairs::build(&cell, &species_idx, &positions, rcut, 3);
        assert_eq!(total_pairs, fp.n_pairs);
        for (t, c) in cache.species.iter().enumerate() {
            for (k, (&i, &j)) in c.centers.iter().zip(c.neighbors.iter()).enumerate() {
                assert_eq!(species_idx[j], t, "bucketed by neighbor species");
                let r = cell.distance(positions[i], positions[j]);
                let s = switching_scalar(r, rcut_smth, rcut);
                assert!((c.s.data()[k] - s).abs() < 1e-12);
                let z = (s - stats.davg[t]) / stats.dstd[t];
                assert!((c.z.data()[k] - z).abs() < 1e-12);
                // Jacobian row has magnitude |s'(r)|.
                let row = &c.jac.data()[3 * k..3 * k + 3];
                let norm = (row[0] * row[0] + row[1] * row[1] + row[2] * row[2]).sqrt();
                assert!(
                    (norm - switching_scalar_deriv(r, rcut_smth, rcut).abs()).abs() < 1e-10
                );
            }
        }
    }

    #[test]
    fn larger_cutoff_sees_more_pairs() {
        let (cell, species_idx, positions) = toy_frame();
        let small = FramePairs::build(&cell, &species_idx, &positions, 3.0, 3);
        let large = FramePairs::build(&cell, &species_idx, &positions, 8.0, 3);
        assert!(large.n_pairs > small.n_pairs);
    }

    fn toy_cache(shift: f64) -> FrameCache {
        let (cell, species_idx, mut positions) = toy_frame();
        for p in &mut positions {
            p[0] = (p[0] + shift) % 10.0;
        }
        let frames: Vec<&[[f64; 3]]> = vec![&positions];
        let stats = DescriptorStats::compute(&cell, &species_idx, &frames, 8.0, 2.0, 3);
        FrameCache::build(&cell, &species_idx, &positions, 8.0, 2.0, &stats, 3)
    }

    fn assert_caches_bitwise_equal(a: &FrameCache, b: &FrameCache) {
        assert_eq!(a.n_atoms, b.n_atoms);
        assert_eq!(a.species.len(), b.species.len());
        for (sa, sb) in a.species.iter().zip(&b.species) {
            let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&sa.z), bits(&sb.z));
            assert_eq!(bits(&sa.s), bits(&sb.s));
            assert_eq!(bits(&sa.jac), bits(&sb.jac));
            assert_eq!(&*sa.centers, &*sb.centers);
            assert_eq!(&*sa.neighbors, &*sb.neighbors);
        }
    }

    #[test]
    fn batch_cache_merge_is_bitwise_identical_to_one_shot_merge() {
        let (c1, c2) = (toy_cache(0.0), toy_cache(0.3));
        let batch = vec![&c1, &c2, &c1];
        let one_shot = merge_frame_caches(&batch);
        let mut merger = BatchCache::new();
        // Warm the merger with a different composition first, so the
        // compared merge runs through the reclaim path.
        let _ = merger.merge(&[&c2, &c1]);
        let reused = merger.merge(&batch);
        assert_caches_bitwise_equal(&one_shot, &reused);
    }

    #[test]
    fn batch_cache_reclaims_buffers_once_caller_drops_result() {
        let (c1, c2) = (toy_cache(0.0), toy_cache(0.3));
        let mut merger = BatchCache::new();
        let first = merger.merge(&[&c1, &c2]);
        let ptr = first.species[0].s.data().as_ptr();
        drop(first); // refcount back to the merger's handle only
        let second = merger.merge(&[&c2, &c1]);
        assert_eq!(
            second.species[0].s.data().as_ptr(),
            ptr,
            "same-size remerge should reuse the reclaimed buffer"
        );
        // While the caller still holds the result, the buffer must NOT be
        // stolen out from under it.
        let third = merger.merge(&[&c1, &c2]);
        assert_ne!(second.species[0].s.data().as_ptr(), third.species[0].s.data().as_ptr());
        assert_caches_bitwise_equal(&third, &merge_frame_caches(&[&c1, &c2]));
    }
}
