//! The DeePMD training loss: prefactor-weighted energy + force MSE with
//! prefactors that follow the learning-rate decay.
//!
//! `pref(t) = limit + (start − limit) · lr(t)/lr(0)`, so with the paper's
//! settings (`p_e: 0.02 → 1`, `p_f: 1000 → 1`) the force error dominates
//! the loss early in training and the energy error gains weight as the
//! learning rate decays — the coupling that motivates the *multiobjective*
//! treatment of the two validation errors.

use crate::config::TrainConfig;

/// Energy/force loss prefactors at one training step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prefactors {
    /// Energy-term weight.
    pub pe: f64,
    /// Force-term weight.
    pub pf: f64,
}

/// Prefactor schedule derived from a config's start/limit values.
#[derive(Clone, Copy, Debug)]
pub struct PrefactorSchedule {
    start_pref_e: f64,
    limit_pref_e: f64,
    start_pref_f: f64,
    limit_pref_f: f64,
}

impl PrefactorSchedule {
    /// Build from a [`TrainConfig`].
    pub fn from_config(config: &TrainConfig) -> Self {
        PrefactorSchedule {
            start_pref_e: config.start_pref_e,
            limit_pref_e: config.limit_pref_e,
            start_pref_f: config.start_pref_f,
            limit_pref_f: config.limit_pref_f,
        }
    }

    /// Prefactors at decay ratio `lr(t)/lr(0)` (1 at step 0, → stop/start).
    pub fn at(&self, decay_ratio: f64) -> Prefactors {
        Prefactors {
            pe: self.limit_pref_e + (self.start_pref_e - self.limit_pref_e) * decay_ratio,
            pf: self.limit_pref_f + (self.start_pref_f - self.limit_pref_f) * decay_ratio,
        }
    }
}

/// Scalar training loss for one frame given per-atom energy error and force
/// component errors: `pe·(ΔE/N)² + pf·Σ‖ΔF‖²/(3N)`.
pub fn frame_loss(
    prefactors: Prefactors,
    energy_error: f64,
    n_atoms: usize,
    force_sq_sum: f64,
) -> f64 {
    let n = n_atoms as f64;
    let de = energy_error / n;
    prefactors.pe * de * de + prefactors.pf * force_sq_sum / (3.0 * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schedule() -> PrefactorSchedule {
        PrefactorSchedule::from_config(&TrainConfig::default())
    }

    #[test]
    fn force_dominates_at_start() {
        let p = paper_schedule().at(1.0);
        assert!((p.pe - 0.02).abs() < 1e-12);
        assert!((p.pf - 1000.0).abs() < 1e-12);
        assert!(p.pf / p.pe > 1e4);
    }

    #[test]
    fn prefactors_approach_limits() {
        let p = paper_schedule().at(1e-6);
        assert!((p.pe - 1.0).abs() < 1e-4);
        assert!((p.pf - 1.0).abs() < 1e-2);
    }

    #[test]
    fn energy_weight_rises_while_force_weight_falls() {
        let s = paper_schedule();
        let early = s.at(1.0);
        let late = s.at(0.01);
        assert!(late.pe > early.pe, "energy prefactor must rise");
        assert!(late.pf < early.pf, "force prefactor must fall");
    }

    #[test]
    fn frame_loss_normalisation() {
        let p = Prefactors { pe: 1.0, pf: 1.0 };
        // 10 atoms, energy error 5 eV → (0.5)² = 0.25; force Σsq = 30 → 1.0.
        let l = frame_loss(p, 5.0, 10, 30.0);
        assert!((l - 1.25).abs() < 1e-12);
    }

    #[test]
    fn frame_loss_scales_with_prefactors() {
        let base = frame_loss(Prefactors { pe: 1.0, pf: 0.0 }, 2.0, 4, 100.0);
        let double = frame_loss(Prefactors { pe: 2.0, pf: 0.0 }, 2.0, 4, 100.0);
        assert!((double - 2.0 * base).abs() < 1e-12);
    }
}
