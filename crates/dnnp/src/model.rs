//! The deep-potential model: per-species embedding nets pooled through the
//! smooth radial descriptor, a fitting net producing per-atom energies, and
//! analytic forces via the autograd tape.
//!
//! This is the `se_e2_r` (radial smooth-edition) flavour of DeepPot-SE at
//! reduced width: the paper fixes embedding {25, 50, 100} and fitting
//! {240, 240, 240}; the reduced default here is embedding {6, 4} and
//! fitting {16, 16} (see DESIGN.md §2, scale substitution). All structure —
//! sum-of-atomic-energies, smooth cutoff, per-species embeddings, forces as
//! `−∂E/∂x` — is faithful.

use rand::Rng;

use dphpo_autograd::{Shape, Tape, Tensor, Var};
use dphpo_md::{Cell, Dataset};

use crate::config::TrainConfig;
use crate::descriptor::{switching, DescriptorStats, FrameCache, FramePairs};

/// One dense layer's parameters.
#[derive(Clone, Debug)]
pub struct LinearLayer {
    /// Weight matrix `[in, out]`.
    pub w: Tensor,
    /// Bias `[out]`.
    pub b: Tensor,
}

/// All trainable parameters of the model.
#[derive(Clone, Debug)]
pub struct ModelParams {
    /// Per-neighbor-species embedding networks (input width 1).
    pub embeddings: Vec<Vec<LinearLayer>>,
    /// Per-species first fitting layer acting on the pooled descriptor
    /// (`[M, h0]` each) — equivalent to one `[S·M, h0]` matrix on the
    /// concatenated descriptor, without needing a concat op.
    pub fit_first: Vec<Tensor>,
    /// Species one-hot contribution to the first fitting layer `[S, h0]`.
    pub fit_onehot: Tensor,
    /// First fitting layer bias `[h0]`.
    pub fit_b0: Tensor,
    /// Remaining fitting layers; the last maps to width 1 (atomic energy).
    pub fit_rest: Vec<LinearLayer>,
    /// Per-species atomic-energy bias `[S, 1]`, initialised to the dataset
    /// mean energy per atom (DeePMD's bias initialisation).
    pub energy_bias: Tensor,
}

fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    let scale = (2.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols).map(|_| scale * gaussian(rng)).collect();
    Tensor::matrix(rows, cols, data)
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

impl ModelParams {
    /// Xavier-initialise all weights for `n_species` species, with the
    /// atomic-energy bias set to `energy_per_atom`.
    pub fn init<R: Rng + ?Sized>(
        config: &TrainConfig,
        n_species: usize,
        energy_per_atom: f64,
        rng: &mut R,
    ) -> Self {
        let m = *config.embedding_neurons.last().expect("empty embedding net");
        let h0 = config.fitting_neurons[0];
        let embeddings = (0..n_species)
            .map(|_| {
                let mut layers = Vec::new();
                let mut input = 1usize;
                for &width in &config.embedding_neurons {
                    layers.push(LinearLayer {
                        w: xavier(input, width, rng),
                        b: Tensor::zeros(Shape::D1(width)),
                    });
                    input = width;
                }
                layers
            })
            .collect();
        let fit_first = (0..n_species).map(|_| xavier(m, h0, rng)).collect();
        let mut fit_rest = Vec::new();
        let mut input = h0;
        for &width in &config.fitting_neurons[1..] {
            fit_rest.push(LinearLayer {
                w: xavier(input, width, rng),
                b: Tensor::zeros(Shape::D1(width)),
            });
            input = width;
        }
        fit_rest.push(LinearLayer {
            w: xavier(input, 1, rng),
            b: Tensor::zeros(Shape::D1(1)),
        });
        ModelParams {
            embeddings,
            fit_first,
            fit_onehot: xavier(n_species, h0, rng),
            fit_b0: Tensor::zeros(Shape::D1(h0)),
            fit_rest,
            energy_bias: Tensor::matrix(n_species, 1, vec![energy_per_atom; n_species]),
        }
    }

    /// Immutable views of every trainable tensor, in optimiser order.
    pub fn flat(&self) -> Vec<&Tensor> {
        let mut out = Vec::new();
        for net in &self.embeddings {
            for layer in net {
                out.push(&layer.w);
                out.push(&layer.b);
            }
        }
        for w in &self.fit_first {
            out.push(w);
        }
        out.push(&self.fit_onehot);
        out.push(&self.fit_b0);
        for layer in &self.fit_rest {
            out.push(&layer.w);
            out.push(&layer.b);
        }
        out.push(&self.energy_bias);
        out
    }

    /// Mutable views, same order as [`ModelParams::flat`].
    pub fn flat_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out = Vec::new();
        for net in &mut self.embeddings {
            for layer in net {
                out.push(&mut layer.w);
                out.push(&mut layer.b);
            }
        }
        for w in &mut self.fit_first {
            out.push(w);
        }
        out.push(&mut self.fit_onehot);
        out.push(&mut self.fit_b0);
        for layer in &mut self.fit_rest {
            out.push(&mut layer.w);
            out.push(&mut layer.b);
        }
        out.push(&mut self.energy_bias);
        out
    }

    /// True if any parameter has gone non-finite (training divergence).
    pub fn has_non_finite(&self) -> bool {
        self.flat().iter().any(|t| t.has_non_finite())
    }

    /// Register every tensor on a tape, returning the taped mirror.
    pub fn register(&self, tape: &Tape) -> TapedParams {
        let flat: Vec<Var> = self.flat().into_iter().map(|t| tape.constant(t.clone())).collect();
        let mut cursor = 0usize;
        let mut next = || {
            let v = flat[cursor];
            cursor += 1;
            v
        };
        let embeddings: Vec<Vec<(Var, Var)>> = self
            .embeddings
            .iter()
            .map(|net| net.iter().map(|_| (next(), next())).collect())
            .collect();
        let fit_first: Vec<Var> = self.fit_first.iter().map(|_| next()).collect();
        let fit_onehot = next();
        let fit_b0 = next();
        let fit_rest: Vec<(Var, Var)> = self.fit_rest.iter().map(|_| (next(), next())).collect();
        let energy_bias = next();
        TapedParams { embeddings, fit_first, fit_onehot, fit_b0, fit_rest, energy_bias, flat }
    }
}

/// Tape-registered mirror of [`ModelParams`].
pub struct TapedParams {
    /// Embedding layers as `(w, b)` variable pairs.
    pub embeddings: Vec<Vec<(Var, Var)>>,
    /// Per-species first fitting weights.
    pub fit_first: Vec<Var>,
    /// One-hot weights.
    pub fit_onehot: Var,
    /// First-layer bias.
    pub fit_b0: Var,
    /// Remaining fitting layers.
    pub fit_rest: Vec<(Var, Var)>,
    /// Energy bias.
    pub energy_bias: Var,
    /// All variables in optimiser order (gradient targets).
    pub flat: Vec<Var>,
}

/// Borrowed reference labels for one frame (energy + forces), used by the
/// cached RMSE path.
#[derive(Clone, Copy, Debug)]
pub struct FrameRef<'a> {
    /// Reference total energy (eV).
    pub energy: f64,
    /// Reference forces (eV/Å).
    pub forces: &'a [[f64; 3]],
}

/// Output of a taped frame evaluation.
pub struct FrameGraph {
    /// Per-atom energies `[n, 1]` (before summation) — a batched caller
    /// reduces these per frame block.
    pub atomic: Var,
    /// Total energy `[1]`.
    pub energy: Var,
    /// Forces `[n, 3]`, present when requested.
    pub forces: Option<Var>,
    /// Tape length right after the descriptor subgraph (embedding nets and
    /// per-species pooling) — phase mark for the step-budget census.
    pub descriptor_end: usize,
    /// Tape length right after the fitting net and energy reduction; nodes
    /// in `forward_end..` belong to the force backward. In the population
    /// builder the descriptor section is shared across genomes, so these
    /// marks delimit phases only for the single-genome builders.
    pub forward_end: usize,
}

/// Build the energy (and optionally force) graph for one frame.
#[allow(clippy::too_many_arguments)]
pub fn forward_frame(
    tape: &Tape,
    taped: &TapedParams,
    config: &TrainConfig,
    stats: &DescriptorStats,
    frame_pairs: &FramePairs,
    positions: &[[f64; 3]],
    onehot: &Tensor,
    want_forces: bool,
) -> FrameGraph {
    let n = onehot.shape().rows();
    let n_species = onehot.shape().cols();
    let h0 = config.fitting_neurons[0];
    let flat_pos: Vec<f64> = positions.iter().flatten().copied().collect();
    let x = tape.constant(Tensor::matrix(n, 3, flat_pos));

    let r = frame_pairs.distances(tape, x);
    let s = switching(tape, r, config.rcut_smth, config.rcut);

    let desc_act = Some(config.desc_activation.unary());
    let mut acc: Option<Var> = None;
    for t in 0..n_species {
        let sp = &frame_pairs.per_species[t];
        if sp.pair_idx.is_empty() {
            continue;
        }
        let st = tape.gather_rows(s, std::rc::Rc::clone(&sp.pair_idx));
        // Standardised embedding input (DeePMD's davg/dstd).
        let z = tape.scale(tape.add_scalar(st, -stats.davg[t]), 1.0 / stats.dstd[t]);
        let mut h = tape.reshape(z, Shape::D2(sp.pair_idx.len(), 1));
        for &(w, b) in &taped.embeddings[t] {
            h = tape.affine(h, w, b, desc_act);
        }
        // Weight each pair's embedding by s(r) and pool per center atom.
        let weighted = tape.mul_col_vec(h, st);
        let pooled = tape.scale(
            tape.scatter_add_rows(weighted, std::rc::Rc::clone(&sp.centers), n),
            1.0 / stats.avg_neighbors[t],
        );
        let contribution = tape.matmul(pooled, taped.fit_first[t]);
        acc = Some(match acc {
            None => contribution,
            Some(prev) => tape.add(prev, contribution),
        });
    }
    let acc = acc.unwrap_or_else(|| tape.constant(Tensor::zeros(Shape::D2(n, h0))));
    let descriptor_end = tape.len();

    let onehot_var = tape.constant(onehot.clone());
    let pre0 = tape.add_bias(
        tape.add(acc, tape.matmul(onehot_var, taped.fit_onehot)),
        taped.fit_b0,
    );
    let fit_act = config.fitting_activation.unary();
    let mut h = config.fitting_activation.apply(tape, pre0);
    let n_rest = taped.fit_rest.len();
    for (k, &(w, b)) in taped.fit_rest.iter().enumerate() {
        // Fused layer; the last one is linear (no activation).
        let act = if k + 1 < n_rest { Some(fit_act) } else { None };
        h = tape.affine(h, w, b, act);
    }
    let atomic = tape.add(h, tape.matmul(onehot_var, taped.energy_bias));
    let energy = tape.sum_all(atomic);
    let forward_end = tape.len();

    let forces = if want_forces {
        let de_dx = tape.grad(energy, &[x])[0];
        Some(tape.neg(de_dx))
    } else {
        None
    };
    FrameGraph { atomic, energy, forces, descriptor_end, forward_end }
}

/// Build the energy (and optionally force) graph for one frame from a
/// precomputed [`FrameCache`].
///
/// Mathematically identical to [`forward_frame`] (property-tested), but the
/// geometry subgraph — pair distances, switching function, and their
/// double-backward inflation — is gone: the energy depends on the cached
/// constants `z` and `s`, and the forces are assembled as
/// `F = −Jᵀ·(∂E/∂s_total)` with the constant Jacobian rows stored in the
/// cache. `∂E/∂s_total` combines the weighting path (`s` multiplies the
/// embedding output) and the input path (`z = (s − μ)/σ` feeds it).
pub fn forward_cached(
    tape: &Tape,
    taped: &TapedParams,
    config: &TrainConfig,
    stats: &DescriptorStats,
    cache: &FrameCache,
    onehot: &Tensor,
    want_forces: bool,
) -> FrameGraph {
    let n = cache.n_atoms;
    let n_species = onehot.shape().cols();
    let h0 = config.fitting_neurons[0];
    debug_assert_eq!(onehot.shape().rows(), n);

    let desc_act = Some(config.desc_activation.unary());
    let mut acc: Option<Var> = None;
    // Leaf variables per species, kept for the force backward.
    let mut z_vars: Vec<Option<Var>> = vec![None; n_species];
    let mut s_vars: Vec<Option<Var>> = vec![None; n_species];
    for (t, sp) in cache.species.iter().enumerate() {
        if sp.s.is_empty() {
            continue;
        }
        let z = tape.constant(sp.z.clone());
        let s = tape.constant(sp.s.clone());
        z_vars[t] = Some(z);
        s_vars[t] = Some(s);
        let mut h = z;
        for &(w, b) in &taped.embeddings[t] {
            h = tape.affine(h, w, b, desc_act);
        }
        let weighted = tape.mul_col_vec(h, s);
        let pooled = tape.scale(
            tape.scatter_add_rows(weighted, std::rc::Rc::clone(&sp.centers), n),
            1.0 / stats.avg_neighbors[t],
        );
        let contribution = tape.matmul(pooled, taped.fit_first[t]);
        acc = Some(match acc {
            None => contribution,
            Some(prev) => tape.add(prev, contribution),
        });
    }
    let acc = acc.unwrap_or_else(|| tape.constant(Tensor::zeros(Shape::D2(n, h0))));
    let descriptor_end = tape.len();

    let onehot_var = tape.constant(onehot.clone());
    let pre0 = tape.add_bias(
        tape.add(acc, tape.matmul(onehot_var, taped.fit_onehot)),
        taped.fit_b0,
    );
    let fit_act = config.fitting_activation.unary();
    let mut h = config.fitting_activation.apply(tape, pre0);
    let n_rest = taped.fit_rest.len();
    for (k, &(w, b)) in taped.fit_rest.iter().enumerate() {
        let act = if k + 1 < n_rest { Some(fit_act) } else { None };
        h = tape.affine(h, w, b, act);
    }
    let atomic = tape.add(h, tape.matmul(onehot_var, taped.energy_bias));
    let energy = tape.sum_all(atomic);
    let forward_end = tape.len();

    let forces = if want_forces {
        // One backward pass for all per-species sensitivities.
        let mut wrt = Vec::new();
        let mut active: Vec<usize> = Vec::new();
        for t in 0..n_species {
            if let (Some(z), Some(s)) = (z_vars[t], s_vars[t]) {
                wrt.push(z);
                wrt.push(s);
                active.push(t);
            }
        }
        let grads = tape.grad(energy, &wrt);
        let mut force: Option<Var> = None;
        for (k, &t) in active.iter().enumerate() {
            let sp = &cache.species[t];
            let g_z = grads[2 * k]; // [Pt, 1]
            let g_s = grads[2 * k + 1]; // [Pt]
            // Total sensitivity u = ∂E/∂s = g_s + g_z/dstd.
            let pt = sp.s.len();
            let u = tape.add(
                g_s,
                tape.scale(tape.reshape(g_z, Shape::D1(pt)), 1.0 / stats.dstd[t]),
            );
            // dE/dx_j += u_p·jac_p ; dE/dx_i −= u_p·jac_p. Force = −dE/dx.
            let jac = tape.constant(sp.jac.clone());
            let rows = tape.mul_col_vec(jac, u);
            let to_neighbors =
                tape.scatter_add_rows(rows, std::rc::Rc::clone(&sp.neighbors), n);
            let to_centers = tape.scatter_add_rows(rows, std::rc::Rc::clone(&sp.centers), n);
            let de_dx = tape.sub(to_neighbors, to_centers);
            force = Some(match force {
                None => tape.neg(de_dx),
                Some(prev) => tape.sub(prev, de_dx),
            });
        }
        Some(force.unwrap_or_else(|| tape.constant(Tensor::zeros(Shape::D2(n, 3)))))
    } else {
        None
    };
    FrameGraph { atomic, energy, forces, descriptor_end, forward_end }
}

/// Build the energy (and optionally force) graphs for several genomes that
/// share one [`FrameCache`] — the population-level evaluation sweep.
///
/// All genomes must share the cache's `(rcut, rcut_smth)` bucket (the cache
/// embeds the standardisation `stats`), the first embedding width, and the
/// descriptor activation; deeper embedding layers and the whole fitting
/// stack may differ per genome. The first embedding layer of every genome
/// is fused into ONE kernel sweep over the shared standardized input
/// `z [P, 1]` ([`Tape::affine_population`]): the shared element is loaded
/// once per row and every genome's `[P, h₁]` block is written directly.
/// Because the first layer contracts over k = 1, every fused output
/// element is the very same `act(z·w + b)` product the per-genome kernel
/// computes, and each genome's graph still contains its own ordinary
/// affine node — so the force backward follows the per-genome path
/// untouched. Both energies and forces are **bit-identical** to
/// [`forward_cached`]: no reduction is ever widened or reordered (see
/// DESIGN.md §10).
pub fn forward_population(
    tape: &Tape,
    taped: &[TapedParams],
    configs: &[&TrainConfig],
    stats: &DescriptorStats,
    cache: &FrameCache,
    onehot: &Tensor,
    want_forces: bool,
) -> Vec<FrameGraph> {
    assert_eq!(taped.len(), configs.len(), "one config per genome");
    let g_count = taped.len();
    assert!(g_count > 0, "empty population");
    let h1 = configs[0].embedding_neurons[0];
    let desc_act = configs[0].desc_activation;
    for c in configs {
        assert_eq!(c.embedding_neurons[0], h1, "population first embedding width mismatch");
        assert_eq!(c.desc_activation, desc_act, "population descriptor activation mismatch");
    }
    let desc_act = Some(desc_act.unary());
    let n = cache.n_atoms;
    let n_species = onehot.shape().cols();
    debug_assert_eq!(onehot.shape().rows(), n);

    let mut accs: Vec<Option<Var>> = vec![None; g_count];
    let mut z_vars: Vec<Option<Var>> = vec![None; n_species];
    let mut s_vars: Vec<Option<Var>> = vec![None; n_species];
    for (t, sp) in cache.species.iter().enumerate() {
        if sp.s.is_empty() {
            continue;
        }
        let z = tape.constant(sp.z.clone());
        let s = tape.constant(sp.s.clone());
        z_vars[t] = Some(z);
        s_vars[t] = Some(s);
        // Fused first layer: every genome's `[P, h₁]` block is produced by
        // one kernel sweep over the shared standardized input, and each
        // genome still owns an ordinary affine node — so the force
        // backward follows the per-genome path bit-exactly.
        let layer0: Vec<(Var, Var)> = taped.iter().map(|tp| tp.embeddings[t][0]).collect();
        let fused = tape.affine_population(z, &layer0, desc_act);
        for (gi, tp) in taped.iter().enumerate() {
            let mut h = fused[gi];
            for &(w, b) in &tp.embeddings[t][1..] {
                h = tape.affine(h, w, b, desc_act);
            }
            let weighted = tape.mul_col_vec(h, s);
            let pooled = tape.scale(
                tape.scatter_add_rows(weighted, std::rc::Rc::clone(&sp.centers), n),
                1.0 / stats.avg_neighbors[t],
            );
            let contribution = tape.matmul(pooled, tp.fit_first[t]);
            accs[gi] = Some(match accs[gi] {
                None => contribution,
                Some(prev) => tape.add(prev, contribution),
            });
        }
    }

    let onehot_var = tape.constant(onehot.clone());
    // The descriptor section above is shared across the whole population.
    let descriptor_end = tape.len();
    accs.into_iter()
        .zip(taped.iter())
        .zip(configs.iter())
        .map(|((acc, tp), config)| {
            let h0 = config.fitting_neurons[0];
            let acc = acc.unwrap_or_else(|| tape.constant(Tensor::zeros(Shape::D2(n, h0))));
            let pre0 = tape.add_bias(
                tape.add(acc, tape.matmul(onehot_var, tp.fit_onehot)),
                tp.fit_b0,
            );
            let fit_act = config.fitting_activation.unary();
            let mut h = config.fitting_activation.apply(tape, pre0);
            let n_rest = tp.fit_rest.len();
            for (k, &(w, b)) in tp.fit_rest.iter().enumerate() {
                let act = if k + 1 < n_rest { Some(fit_act) } else { None };
                h = tape.affine(h, w, b, act);
            }
            let atomic = tape.add(h, tape.matmul(onehot_var, tp.energy_bias));
            let energy = tape.sum_all(atomic);
            let forward_end = tape.len();

            let forces = if want_forces {
                let mut wrt = Vec::new();
                let mut active: Vec<usize> = Vec::new();
                for t in 0..n_species {
                    if let (Some(z), Some(s)) = (z_vars[t], s_vars[t]) {
                        wrt.push(z);
                        wrt.push(s);
                        active.push(t);
                    }
                }
                let grads = tape.grad(energy, &wrt);
                let mut force: Option<Var> = None;
                for (k, &t) in active.iter().enumerate() {
                    let sp = &cache.species[t];
                    let g_z = grads[2 * k];
                    let g_s = grads[2 * k + 1];
                    let pt = sp.s.len();
                    let u = tape.add(
                        g_s,
                        tape.scale(tape.reshape(g_z, Shape::D1(pt)), 1.0 / stats.dstd[t]),
                    );
                    let jac = tape.constant(sp.jac.clone());
                    let rows = tape.mul_col_vec(jac, u);
                    let to_neighbors =
                        tape.scatter_add_rows(rows, std::rc::Rc::clone(&sp.neighbors), n);
                    let to_centers =
                        tape.scatter_add_rows(rows, std::rc::Rc::clone(&sp.centers), n);
                    let de_dx = tape.sub(to_neighbors, to_centers);
                    force = Some(match force {
                        None => tape.neg(de_dx),
                        Some(prev) => tape.sub(prev, de_dx),
                    });
                }
                Some(force.unwrap_or_else(|| tape.constant(Tensor::zeros(Shape::D2(n, 3)))))
            } else {
                None
            };
            FrameGraph { atomic, energy, forces, descriptor_end, forward_end }
        })
        .collect()
}

/// A trained (or training) deep-potential model bound to one system.
pub struct DnnpModel {
    /// Training configuration.
    pub config: TrainConfig,
    /// Trainable parameters.
    pub params: ModelParams,
    /// Descriptor standardisation statistics.
    pub stats: DescriptorStats,
    /// Dense species index per atom.
    pub species_idx: Vec<usize>,
    /// Number of species.
    pub n_species: usize,
    /// One-hot species matrix `[n, S]`.
    pub onehot: Tensor,
    /// The periodic cell.
    pub cell: Cell,
}

impl DnnpModel {
    /// Initialise a model for the system described by `train`, computing
    /// descriptor statistics from up to 8 of its frames.
    pub fn new<R: Rng + ?Sized>(
        config: TrainConfig,
        train: &Dataset,
        rng: &mut R,
    ) -> Result<Self, String> {
        let stats = Self::compute_stats(&config, train)?;
        Self::with_stats(config, train, stats, rng)
    }

    /// The descriptor statistics [`DnnpModel::new`] would compute — split
    /// out so a population of genomes sharing an `(rcut, rcut_smth)` bucket
    /// can compute them once. The computation draws no randomness, so a
    /// model built via [`DnnpModel::with_stats`] from these is bit-identical
    /// to one built by [`DnnpModel::new`] with the same rng.
    pub fn compute_stats(config: &TrainConfig, train: &Dataset) -> Result<DescriptorStats, String> {
        config.validate()?;
        if train.frames.is_empty() {
            return Err("empty training dataset".into());
        }
        let species_idx: Vec<usize> = train.species.iter().map(|s| s.index()).collect();
        let n_species = species_idx.iter().copied().max().unwrap_or(0) + 1;
        let sample: Vec<&[[f64; 3]]> = train
            .frames
            .iter()
            .take(8)
            .map(|f| f.positions.as_slice())
            .collect();
        Ok(DescriptorStats::compute(
            &train.cell,
            &species_idx,
            &sample,
            config.rcut,
            config.rcut_smth,
            n_species,
        ))
    }

    /// As [`DnnpModel::new`] with precomputed descriptor statistics. The
    /// stats must come from [`DnnpModel::compute_stats`] on the same
    /// `(config.rcut, config.rcut_smth, train)` triple.
    pub fn with_stats<R: Rng + ?Sized>(
        config: TrainConfig,
        train: &Dataset,
        stats: DescriptorStats,
        rng: &mut R,
    ) -> Result<Self, String> {
        config.validate()?;
        if train.frames.is_empty() {
            return Err("empty training dataset".into());
        }
        let species_idx: Vec<usize> = train.species.iter().map(|s| s.index()).collect();
        let n_species = species_idx.iter().copied().max().unwrap_or(0) + 1;
        let n = species_idx.len();
        let mut onehot = Tensor::zeros(Shape::D2(n, n_species));
        for (i, &t) in species_idx.iter().enumerate() {
            onehot.data_mut()[i * n_species + t] = 1.0;
        }
        let params = ModelParams::init(&config, n_species, train.mean_energy_per_atom(), rng);
        Ok(DnnpModel {
            config,
            params,
            stats,
            species_idx,
            n_species,
            onehot,
            cell: train.cell,
        })
    }

    /// Predict total energy and forces for a configuration.
    pub fn predict(&self, positions: &[[f64; 3]]) -> (f64, Vec<[f64; 3]>) {
        let frame_pairs = FramePairs::build(
            &self.cell,
            &self.species_idx,
            positions,
            self.config.rcut,
            self.n_species,
        );
        let tape = Tape::new();
        let taped = self.params.register(&tape);
        let graph = forward_frame(
            &tape,
            &taped,
            &self.config,
            &self.stats,
            &frame_pairs,
            positions,
            &self.onehot,
            true,
        );
        let energy = tape.item(graph.energy);
        // Read the forces through a borrow — no tensor handle escapes.
        let forces = tape.with_value(graph.forces.expect("forces requested"), |t| {
            t.data().chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect()
        });
        (energy, forces)
    }

    /// Build the weight-independent descriptor cache for a frame.
    pub fn build_cache(&self, positions: &[[f64; 3]]) -> FrameCache {
        FrameCache::build(
            &self.cell,
            &self.species_idx,
            positions,
            self.config.rcut,
            self.config.rcut_smth,
            &self.stats,
            self.n_species,
        )
    }

    /// Predict energy and forces from a prebuilt cache (fast path).
    pub fn predict_cached(&self, cache: &FrameCache) -> (f64, Vec<[f64; 3]>) {
        let tape = Tape::new();
        let taped = self.params.register(&tape);
        let graph = forward_cached(
            &tape,
            &taped,
            &self.config,
            &self.stats,
            cache,
            &self.onehot,
            true,
        );
        let energy = tape.item(graph.energy);
        let forces = tape.with_value(graph.forces.expect("forces requested"), |t| {
            t.data().chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect()
        });
        (energy, forces)
    }

    /// RMSEs against reference frames using prebuilt caches (fast path for
    /// the trainer's validation rows).
    pub fn rmse_cached(&self, frames: &[FrameRef<'_>], caches: &[FrameCache]) -> (f64, f64) {
        let n_atoms = self.species_idx.len() as f64;
        let mut e_sq = 0.0;
        let mut f_sq = 0.0;
        let mut f_count = 0usize;
        for (frame, cache) in frames.iter().zip(caches.iter()) {
            let (e, forces) = self.predict_cached(cache);
            let de = (e - frame.energy) / n_atoms;
            e_sq += de * de;
            for (fp, fr) in forces.iter().zip(frame.forces.iter()) {
                for k in 0..3 {
                    f_sq += (fp[k] - fr[k]).powi(2);
                    f_count += 1;
                }
            }
        }
        if frames.is_empty() {
            return (f64::NAN, f64::NAN);
        }
        ((e_sq / frames.len() as f64).sqrt(), (f_sq / f_count as f64).sqrt())
    }

    /// Validation RMSEs over up to `max_frames` frames of `dataset`:
    /// `(energy RMSE in eV/atom, force RMSE in eV/Å)` — the two numbers the
    /// paper's EA reads from the last `lcurve.out` row.
    pub fn rmse(&self, dataset: &Dataset, max_frames: usize) -> (f64, f64) {
        let n_atoms = dataset.n_atoms() as f64;
        let mut e_sq = 0.0;
        let mut f_sq = 0.0;
        let mut f_count = 0usize;
        let mut frames = 0usize;
        for frame in dataset.frames.iter().take(max_frames.max(1)) {
            let (e, forces) = self.predict(&frame.positions);
            let de = (e - frame.energy) / n_atoms;
            e_sq += de * de;
            for (fp, fr) in forces.iter().zip(frame.forces.iter()) {
                for k in 0..3 {
                    f_sq += (fp[k] - fr[k]).powi(2);
                    f_count += 1;
                }
            }
            frames += 1;
        }
        if frames == 0 {
            return (f64::NAN, f64::NAN);
        }
        ((e_sq / frames as f64).sqrt(), (f_sq / f_count as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphpo_md::generate::{generate_dataset, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> (DnnpModel, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 6;
        let dataset = generate_dataset(&gen, &mut rng);
        let config = TrainConfig {
            rcut: 5.0,
            rcut_smth: 2.0,
            embedding_neurons: vec![6, 4],
            fitting_neurons: vec![8, 8],
            ..TrainConfig::default()
        };
        let model = DnnpModel::new(config, &dataset, &mut rng).unwrap();
        (model, dataset)
    }

    #[test]
    fn initial_prediction_is_near_mean_energy() {
        let (model, dataset) = tiny_model(1);
        let (e, _) = model.predict(&dataset.frames[0].positions);
        let expected = dataset.mean_energy_per_atom() * dataset.n_atoms() as f64;
        // Bias init puts the untrained model within the random-output
        // scale of the dataset mean (≲1 eV/atom), instead of the hundreds
        // of eV a zero-initialised bias would miss by.
        let per_atom_gap = (e - expected).abs() / dataset.n_atoms() as f64;
        assert!(
            per_atom_gap < 1.0,
            "initial energy {e} too far from bias {expected} ({per_atom_gap} eV/atom)"
        );
    }

    #[test]
    fn prediction_is_finite_for_all_activations() {
        use crate::activation::Activation;
        let mut rng = StdRng::seed_from_u64(2);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 3;
        let dataset = generate_dataset(&gen, &mut rng);
        for desc in Activation::ALL {
            for fit in [Activation::Tanh, Activation::Relu] {
                let config = TrainConfig {
                    rcut: 5.0,
                    rcut_smth: 2.0,
                    desc_activation: desc,
                    fitting_activation: fit,
                    embedding_neurons: vec![4, 4],
                    fitting_neurons: vec![6],
                    ..TrainConfig::default()
                };
                let model = DnnpModel::new(config, &dataset, &mut rng).unwrap();
                let (e, forces) = model.predict(&dataset.frames[0].positions);
                assert!(e.is_finite(), "{}/{}", desc.name(), fit.name());
                assert!(forces.iter().flatten().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn forces_are_gradient_of_predicted_energy() {
        let (model, dataset) = tiny_model(3);
        let positions = dataset.frames[0].positions.clone();
        let (_, forces) = model.predict(&positions);
        let h = 1e-5;
        // Spot-check three atom-components against central differences.
        for &(atom, comp) in &[(0usize, 0usize), (3, 1), (7, 2)] {
            let mut pp = positions.clone();
            let mut pm = positions.clone();
            pp[atom][comp] += h;
            pm[atom][comp] -= h;
            let (ep, _) = model.predict(&pp);
            let (em, _) = model.predict(&pm);
            let fd = -(ep - em) / (2.0 * h);
            assert!(
                (fd - forces[atom][comp]).abs() < 1e-4 * (1.0 + fd.abs()),
                "atom {atom} comp {comp}: fd {fd} vs {}",
                forces[atom][comp]
            );
        }
    }

    #[test]
    fn energy_is_translation_invariant() {
        let (model, dataset) = tiny_model(4);
        let positions = dataset.frames[0].positions.clone();
        let shifted: Vec<[f64; 3]> = positions
            .iter()
            .map(|p| model.cell.wrap([p[0] + 1.37, p[1] - 0.58, p[2] + 3.1]))
            .collect();
        let (e0, _) = model.predict(&positions);
        let (e1, _) = model.predict(&shifted);
        assert!((e0 - e1).abs() < 1e-8, "translation changed energy: {e0} vs {e1}");
    }

    #[test]
    fn energy_is_permutation_invariant_within_species() {
        let (model, dataset) = tiny_model(5);
        let mut positions = dataset.frames[0].positions.clone();
        // Find two atoms of the same species and swap them.
        let idx = &model.species_idx;
        let (a, b) = (0..idx.len())
            .flat_map(|i| ((i + 1)..idx.len()).map(move |j| (i, j)))
            .find(|&(i, j)| idx[i] == idx[j])
            .expect("no same-species pair");
        let (e0, _) = model.predict(&positions);
        positions.swap(a, b);
        let (e1, _) = model.predict(&positions);
        assert!((e0 - e1).abs() < 1e-9, "permutation changed energy");
    }

    #[test]
    fn rmse_is_positive_and_finite_before_training() {
        let (model, dataset) = tiny_model(6);
        let (rmse_e, rmse_f) = model.rmse(&dataset, 4);
        assert!(rmse_e.is_finite() && rmse_e > 0.0);
        assert!(rmse_f.is_finite() && rmse_f > 0.0);
    }

    #[test]
    fn flat_and_flat_mut_agree_on_order_and_count() {
        let (mut model, _) = tiny_model(7);
        let shapes: Vec<_> = model.params.flat().iter().map(|t| t.shape()).collect();
        let shapes_mut: Vec<_> = model.params.flat_mut().iter().map(|t| t.shape()).collect();
        assert_eq!(shapes, shapes_mut);
        // 3 species × 2 embedding layers × 2 + 3 fit_first + onehot + b0
        // + 2 fit_rest layers × 2 + bias = 12 + 3 + 2 + 4 + 1 = 22.
        assert_eq!(shapes.len(), 22);
    }

    #[test]
    fn register_round_trips_values() {
        let (model, _) = tiny_model(8);
        let tape = Tape::new();
        let taped = model.params.register(&tape);
        for (var, tensor) in taped.flat.iter().zip(model.params.flat()) {
            assert_eq!(&tape.value(*var), tensor);
        }
    }

    #[test]
    fn cached_forward_matches_position_graph() {
        // The central equivalence: the fast cached path must produce the
        // same energies AND forces as the full position-differentiated
        // graph, for every activation choice.
        use crate::activation::Activation;
        let mut rng = StdRng::seed_from_u64(21);
        let mut gen = GenConfig::tiny();
        gen.n_frames = 3;
        let dataset = generate_dataset(&gen, &mut rng);
        for (desc, fit) in [
            (Activation::Tanh, Activation::Tanh),
            (Activation::Sigmoid, Activation::Relu),
            (Activation::Softplus, Activation::Relu6),
        ] {
            let config = TrainConfig {
                rcut: 5.5,
                rcut_smth: 2.0,
                desc_activation: desc,
                fitting_activation: fit,
                embedding_neurons: vec![5, 4],
                fitting_neurons: vec![7, 7],
                ..TrainConfig::default()
            };
            let model = DnnpModel::new(config, &dataset, &mut rng).unwrap();
            for frame in &dataset.frames {
                let (e_graph, f_graph) = model.predict(&frame.positions);
                let cache = model.build_cache(&frame.positions);
                let (e_cached, f_cached) = model.predict_cached(&cache);
                assert!(
                    (e_graph - e_cached).abs() < 1e-9,
                    "{}/{}: energy {e_graph} vs {e_cached}",
                    desc.name(),
                    fit.name()
                );
                for (a, b) in f_graph.iter().zip(f_cached.iter()) {
                    for k in 0..3 {
                        assert!(
                            (a[k] - b[k]).abs() < 1e-9,
                            "{}/{}: force {} vs {}",
                            desc.name(),
                            fit.name(),
                            a[k],
                            b[k]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rmse_cached_matches_rmse() {
        let (model, dataset) = tiny_model(22);
        let frames: Vec<crate::model::FrameRef<'_>> = dataset
            .frames
            .iter()
            .take(3)
            .map(|f| FrameRef { energy: f.energy, forces: &f.forces })
            .collect();
        let caches: Vec<_> = dataset
            .frames
            .iter()
            .take(3)
            .map(|f| model.build_cache(&f.positions))
            .collect();
        let (e1, f1) = model.rmse(&dataset, 3);
        let (e2, f2) = model.rmse_cached(&frames, &caches);
        assert!((e1 - e2).abs() < 1e-12);
        assert!((f1 - f2).abs() < 1e-12);
    }

    #[test]
    fn non_finite_detection_on_params() {
        let (mut model, _) = tiny_model(9);
        assert!(!model.params.has_non_finite());
        model.params.fit_b0.data_mut()[0] = f64::NAN;
        assert!(model.params.has_non_finite());
    }
}
