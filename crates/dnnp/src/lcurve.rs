//! The training-curve artifact (`lcurve.out`).
//!
//! DeePMD-kit writes a whitespace-separated learning-curve file during
//! training; the paper's evaluation workflow (§2.2.4) reads **the last
//! values of the `rmse_e_val` and `rmse_f_val` columns** as the two fitness
//! objectives. This module reproduces that artifact and its parsing.

use std::fmt::Write as _;

/// One displayed training step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LcurveRow {
    /// Training step index.
    pub step: usize,
    /// Validation energy RMSE (eV/atom).
    pub rmse_e_val: f64,
    /// Training-batch energy RMSE (eV/atom).
    pub rmse_e_trn: f64,
    /// Validation force RMSE (eV/Å).
    pub rmse_f_val: f64,
    /// Training-batch force RMSE (eV/Å).
    pub rmse_f_trn: f64,
    /// Learning rate at this step.
    pub lr: f64,
}

/// A training curve: ordered display rows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Lcurve {
    rows: Vec<LcurveRow>,
}

impl Lcurve {
    /// An empty curve.
    pub fn new() -> Self {
        Lcurve { rows: Vec::new() }
    }

    /// Append a row.
    pub fn push(&mut self, row: LcurveRow) {
        self.rows.push(row);
    }

    /// All rows in order.
    pub fn rows(&self) -> &[LcurveRow] {
        &self.rows
    }

    /// The last row, if any.
    pub fn last(&self) -> Option<&LcurveRow> {
        self.rows.last()
    }

    /// The paper's fitness extraction: last `(rmse_e_val, rmse_f_val)`.
    pub fn final_losses(&self) -> Option<(f64, f64)> {
        self.last().map(|r| (r.rmse_e_val, r.rmse_f_val))
    }

    /// The last `n` rows (all rows when fewer exist) — the "lcurve tail"
    /// journaled per evaluation so a resumed campaign can reproduce the
    /// convergence evidence without rerunning training.
    pub fn tail(&self, n: usize) -> &[LcurveRow] {
        let start = self.rows.len().saturating_sub(n);
        &self.rows[start..]
    }

    /// Render in DeePMD's `lcurve.out` layout.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "#  step      rmse_e_val    rmse_e_trn    rmse_f_val    rmse_f_trn            lr\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>7}    {:>12.6e}  {:>12.6e}  {:>12.6e}  {:>12.6e}  {:>12.6e}",
                r.step, r.rmse_e_val, r.rmse_e_trn, r.rmse_f_val, r.rmse_f_trn, r.lr
            );
        }
        out
    }

    /// Parse text produced by [`Lcurve::to_text`] (or a DeePMD file with
    /// the same column order). Ignores comment lines; any malformed row is
    /// an error (see [`Lcurve::parse_tolerant`] for crash-tail tolerance).
    pub fn parse(text: &str) -> Result<Lcurve, String> {
        let mut rows = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            rows.push(parse_row(lineno, line)?);
        }
        Ok(Lcurve { rows })
    }

    /// As [`Lcurve::parse`], but tolerant of a torn tail: parsing stops at
    /// the first malformed row and returns everything before it. This is
    /// the journal's durability rule applied to `lcurve.out` — a process
    /// killed mid-`write` leaves a truncated final line, which must not
    /// invalidate the completed rows above it. An empty or header-only file
    /// parses to an empty curve.
    pub fn parse_tolerant(text: &str) -> Lcurve {
        let mut rows = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_row(lineno, line) {
                Ok(row) => rows.push(row),
                Err(_) => break,
            }
        }
        Lcurve { rows }
    }
}

/// Parse one non-comment `lcurve.out` row (exactly 6 whitespace-separated
/// columns).
fn parse_row(lineno: usize, line: &str) -> Result<LcurveRow, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 6 {
        return Err(format!("line {}: expected 6 columns, got {}", lineno + 1, fields.len()));
    }
    let parse_f = |s: &str| -> Result<f64, String> {
        s.parse::<f64>().map_err(|_| format!("line {}: bad number '{s}'", lineno + 1))
    };
    Ok(LcurveRow {
        step: fields[0]
            .parse::<usize>()
            .map_err(|_| format!("line {}: bad step '{}'", lineno + 1, fields[0]))?,
        rmse_e_val: parse_f(fields[1])?,
        rmse_e_trn: parse_f(fields[2])?,
        rmse_f_val: parse_f(fields[3])?,
        rmse_f_trn: parse_f(fields[4])?,
        lr: parse_f(fields[5])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Lcurve {
        let mut c = Lcurve::new();
        c.push(LcurveRow { step: 0, rmse_e_val: 0.5, rmse_e_trn: 0.6, rmse_f_val: 1.2, rmse_f_trn: 1.3, lr: 1e-3 });
        c.push(LcurveRow { step: 50, rmse_e_val: 0.0016, rmse_e_trn: 0.002, rmse_f_val: 0.0357, rmse_f_trn: 0.04, lr: 1e-5 });
        c
    }

    #[test]
    fn final_losses_read_last_row() {
        let c = sample();
        let (e, f) = c.final_losses().unwrap();
        assert_eq!(e, 0.0016);
        assert_eq!(f, 0.0357);
    }

    #[test]
    fn empty_curve_has_no_losses() {
        assert!(Lcurve::new().final_losses().is_none());
    }

    #[test]
    fn text_round_trips() {
        let c = sample();
        let text = c.to_text();
        assert!(text.starts_with('#'), "needs a header comment");
        let parsed = Lcurve::parse(&text).unwrap();
        assert_eq!(parsed.rows().len(), 2);
        for (a, b) in parsed.rows().iter().zip(c.rows()) {
            assert_eq!(a.step, b.step);
            assert!((a.rmse_f_val - b.rmse_f_val).abs() < 1e-12);
            assert!((a.lr - b.lr).abs() < 1e-18);
        }
    }

    #[test]
    fn tail_clamps_to_available_rows() {
        let c = sample();
        assert_eq!(c.tail(1).len(), 1);
        assert_eq!(c.tail(1)[0].step, 50);
        assert_eq!(c.tail(10).len(), 2);
        assert!(Lcurve::new().tail(3).is_empty());
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        assert!(Lcurve::parse("1 2 3").is_err());
        assert!(Lcurve::parse("x 1 2 3 4 5").is_err());
        assert!(Lcurve::parse("1 2 3 4 5 hello").is_err());
        // Comments and blank lines are fine.
        assert_eq!(Lcurve::parse("# header\n\n").unwrap().rows().len(), 0);
    }

    #[test]
    fn tolerant_parse_of_empty_file() {
        assert!(Lcurve::parse_tolerant("").rows().is_empty());
        assert!(Lcurve::parse_tolerant("\n\n").rows().is_empty());
    }

    #[test]
    fn tolerant_parse_of_header_only_file() {
        let header = "#  step      rmse_e_val    rmse_e_trn    rmse_f_val    rmse_f_trn            lr\n";
        assert!(Lcurve::parse_tolerant(header).rows().is_empty());
        // The strict parser agrees: a header is not an error.
        assert!(Lcurve::parse(header).unwrap().rows().is_empty());
    }

    #[test]
    fn tolerant_parse_recovers_rows_before_a_torn_last_line() {
        let full = sample().to_text();
        // Simulate a crash mid-write: cut the file inside the last row.
        let torn = &full[..full.len() - 20];
        assert!(Lcurve::parse(torn).is_err(), "strict parser must reject the torn tail");
        let recovered = Lcurve::parse_tolerant(torn);
        assert_eq!(recovered.rows().len(), 1);
        assert_eq!(recovered.rows()[0].step, 0);
        // An intact file parses identically under both parsers.
        assert_eq!(Lcurve::parse_tolerant(&full), Lcurve::parse(&full).unwrap());
    }
}
