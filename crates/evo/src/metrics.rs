//! Multi-objective quality metrics beyond hypervolume: inverted
//! generational distance (IGD) against a reference front, front spread,
//! and analytic reference fronts for the ZDT problems — used to validate
//! the optimizer quantitatively.

use crate::individual::Fitness;

/// Inverted generational distance: mean Euclidean distance from each
/// reference-front point to its nearest obtained point (lower is better).
pub fn igd(obtained: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(!reference.is_empty(), "empty reference front");
    if obtained.is_empty() {
        return f64::INFINITY;
    }
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    };
    reference
        .iter()
        .map(|r| {
            obtained
                .iter()
                .map(|o| dist(r, o))
                .fold(f64::MAX, f64::min)
        })
        .sum::<f64>()
        / reference.len() as f64
}

/// Spread (Δ-style): standard deviation of consecutive gap lengths along a
/// bi-objective front sorted by the first objective, normalised by the mean
/// gap. 0 = perfectly uniform spacing.
pub fn spread_2d(front: &[(f64, f64)]) -> f64 {
    if front.len() < 3 {
        return 0.0;
    }
    let mut pts = front.to_vec();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let gaps: Vec<f64> = pts
        .windows(2)
        .map(|w| ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt())
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
    var.sqrt() / mean
}

/// `n` evenly spaced points on ZDT1's true front `f2 = 1 − √f1`.
pub fn zdt1_reference_front(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|k| {
            let f1 = k as f64 / (n - 1).max(1) as f64;
            vec![f1, 1.0 - f1.sqrt()]
        })
        .collect()
}

/// `n` evenly spaced points on ZDT2's true front `f2 = 1 − f1²`.
pub fn zdt2_reference_front(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|k| {
            let f1 = k as f64 / (n - 1).max(1) as f64;
            vec![f1, 1.0 - f1 * f1]
        })
        .collect()
}

/// Exact hypervolume dominated by `front` with respect to `reference`, for
/// two or three minimised objectives. Points with any coordinate at or
/// beyond the reference are discarded (they dominate zero volume inside the
/// reference box). The 2-D case is the classic sorted sweep; the 3-D case
/// sweeps slabs along the third objective, each slab contributing the 2-D
/// hypervolume of the points introduced so far times the slab height.
///
/// Both sweeps visit points in a deterministic total order, so the result
/// is a pure function of the (multi)set of points — independent of input
/// order and safe to compare byte-for-byte across runs.
pub fn hypervolume(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    match reference.len() {
        2 => {
            let pts: Vec<(f64, f64)> = front
                .iter()
                .filter(|p| p.len() == 2 && p[0] < reference[0] && p[1] < reference[1])
                .map(|p| (p[0], p[1]))
                .collect();
            sweep_2d(pts, (reference[0], reference[1]))
        }
        3 => {
            let mut pts: Vec<(f64, f64, f64)> = front
                .iter()
                .filter(|p| {
                    p.len() == 3
                        && p[0] < reference[0]
                        && p[1] < reference[1]
                        && p[2] < reference[2]
                })
                .map(|p| (p[0], p[1], p[2]))
                .collect();
            // Slab sweep along the third objective, lowest first.
            pts.sort_by(|a, b| {
                a.2.total_cmp(&b.2).then(a.0.total_cmp(&b.0)).then(a.1.total_cmp(&b.1))
            });
            let mut hv = 0.0;
            for (i, p) in pts.iter().enumerate() {
                let z_next = pts.get(i + 1).map_or(reference[2], |q| q.2);
                let height = z_next - p.2;
                if height <= 0.0 {
                    continue;
                }
                let slab: Vec<(f64, f64)> =
                    pts[..=i].iter().map(|q| (q.0, q.1)).collect();
                hv += sweep_2d(slab, (reference[0], reference[1])) * height;
            }
            hv
        }
        d => panic!("hypervolume supports 2 or 3 objectives, got {d}"),
    }
}

/// 2-D hypervolume sweep over pre-filtered points (all strictly inside the
/// reference box).
fn sweep_2d(mut pts: Vec<(f64, f64)>, reference: (f64, f64)) -> f64 {
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut hv = 0.0;
    let mut best_f2 = reference.1;
    for &(f1, f2) in &pts {
        if f2 < best_f2 {
            hv += (reference.0 - f1) * (best_f2 - f2);
            best_f2 = f2;
        }
    }
    hv
}

/// Per-generation search-quality summary of a two-objective front.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FrontStats {
    /// Number of members on the front (archive cardinality).
    pub cardinality: usize,
    /// Exact 2-D hypervolume against the campaign reference point.
    pub hypervolume: f64,
    /// Gap-uniformity spread (see [`spread_2d`]); 0 = perfectly uniform.
    pub spread: f64,
}

/// Summarise a two-objective front: cardinality, hypervolume against
/// `reference`, and spread. All three are deterministic functions of the
/// point set.
pub fn front_stats_2d(front: &[(f64, f64)], reference: (f64, f64)) -> FrontStats {
    let vecs: Vec<Vec<f64>> = front.iter().map(|&(a, b)| vec![a, b]).collect();
    FrontStats {
        cardinality: front.len(),
        hypervolume: hypervolume(&vecs, &[reference.0, reference.1]),
        spread: spread_2d(front),
    }
}

/// Objective vectors of the non-penalty members of a population slice.
pub fn objective_vectors(fitnesses: &[&Fitness]) -> Vec<Vec<f64>> {
    fitnesses
        .iter()
        .filter(|f| !f.is_penalty())
        .map(|f| f.values().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn igd_zero_when_fronts_match() {
        let reference = zdt1_reference_front(20);
        assert_eq!(igd(&reference, &reference), 0.0);
    }

    #[test]
    fn igd_decreases_as_points_approach_front() {
        let reference = zdt1_reference_front(30);
        let far: Vec<Vec<f64>> = reference.iter().map(|p| vec![p[0], p[1] + 1.0]).collect();
        let near: Vec<Vec<f64>> = reference.iter().map(|p| vec![p[0], p[1] + 0.1]).collect();
        assert!(igd(&near, &reference) < igd(&far, &reference));
        // Each reference point has its shifted twin at distance exactly
        // 0.1, so the nearest-point distance is bounded by (and close to)
        // that.
        let near_igd = igd(&near, &reference);
        assert!(near_igd <= 0.1 + 1e-9 && near_igd > 0.03, "igd {near_igd}");
    }

    #[test]
    fn igd_of_empty_set_is_infinite() {
        assert!(igd(&[], &zdt1_reference_front(5)).is_infinite());
    }

    #[test]
    fn igd_penalises_partial_coverage() {
        // Covering only half the front leaves the rest at a distance.
        let reference = zdt1_reference_front(40);
        let half: Vec<Vec<f64>> = reference[..20].to_vec();
        assert!(igd(&half, &reference) > 0.01);
    }

    #[test]
    fn spread_uniform_vs_clustered() {
        let uniform: Vec<(f64, f64)> =
            (0..10).map(|k| (k as f64 / 9.0, 1.0 - k as f64 / 9.0)).collect();
        let mut clustered = uniform.clone();
        // Push half the points into a tight cluster.
        for p in clustered.iter_mut().take(5) {
            p.0 *= 0.05;
            p.1 = 1.0 - p.0;
        }
        assert!(spread_2d(&uniform) < 1e-9);
        assert!(spread_2d(&clustered) > spread_2d(&uniform));
    }

    #[test]
    fn spread_degenerate_inputs() {
        assert_eq!(spread_2d(&[]), 0.0);
        assert_eq!(spread_2d(&[(0.0, 1.0), (1.0, 0.0)]), 0.0);
    }

    #[test]
    fn reference_fronts_have_expected_shape() {
        let f1 = zdt1_reference_front(11);
        assert_eq!(f1.len(), 11);
        assert_eq!(f1[0], vec![0.0, 1.0]);
        assert!((f1[10][1] - 0.0).abs() < 1e-12);
        let f2 = zdt2_reference_front(11);
        assert!((f2[5][1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_2d_matches_hand_computation() {
        // Two staircase points against reference (1, 1):
        // (0.25, 0.75) contributes 0.75 × 0.25, (0.5, 0.25) adds 0.5 × 0.5.
        let front = vec![vec![0.25, 0.75], vec![0.5, 0.25]];
        let hv = hypervolume(&front, &[1.0, 1.0]);
        assert!((hv - (0.75 * 0.25 + 0.5 * 0.5)).abs() < 1e-12, "hv {hv}");
        // Order independence.
        let rev = vec![front[1].clone(), front[0].clone()];
        assert_eq!(hv, hypervolume(&rev, &[1.0, 1.0]));
        // Points at or beyond the reference contribute nothing.
        let with_out = vec![front[0].clone(), front[1].clone(), vec![1.0, 0.1]];
        assert_eq!(hv, hypervolume(&with_out, &[1.0, 1.0]));
    }

    #[test]
    fn hypervolume_3d_constant_slab_reduces_to_2d() {
        // All points share f3 = 0.5, so the 3-D volume is the 2-D area
        // times the slab height (ref_z − 0.5).
        let pairs = vec![vec![0.25, 0.75], vec![0.5, 0.25]];
        let hv2 = hypervolume(&pairs, &[1.0, 1.0]);
        let cube: Vec<Vec<f64>> =
            pairs.iter().map(|p| vec![p[0], p[1], 0.5]).collect();
        let hv3 = hypervolume(&cube, &[1.0, 1.0, 2.0]);
        assert!((hv3 - hv2 * 1.5).abs() < 1e-12, "hv3 {hv3} vs {}", hv2 * 1.5);
    }

    #[test]
    fn hypervolume_empty_front_is_zero() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn front_stats_combine_the_three_metrics() {
        let front = [(0.25, 0.75), (0.5, 0.25)];
        let stats = front_stats_2d(&front, (1.0, 1.0));
        assert_eq!(stats.cardinality, 2);
        assert!(stats.hypervolume > 0.0);
        assert_eq!(stats.spread, 0.0, "two points have no gap variance");
    }

    #[test]
    fn objective_vectors_skip_penalties() {
        let fits = [Fitness::new(vec![0.1, 0.2]),
            Fitness::penalty(2),
            Fitness::new(vec![0.3, 0.4])];
        let refs: Vec<&Fitness> = fits.iter().collect();
        let vecs = objective_vectors(&refs);
        assert_eq!(vecs.len(), 2);
        assert_eq!(vecs[1], vec![0.3, 0.4]);
    }
}
