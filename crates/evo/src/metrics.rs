//! Multi-objective quality metrics beyond hypervolume: inverted
//! generational distance (IGD) against a reference front, front spread,
//! and analytic reference fronts for the ZDT problems — used to validate
//! the optimizer quantitatively.

use crate::individual::Fitness;

/// Inverted generational distance: mean Euclidean distance from each
/// reference-front point to its nearest obtained point (lower is better).
pub fn igd(obtained: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(!reference.is_empty(), "empty reference front");
    if obtained.is_empty() {
        return f64::INFINITY;
    }
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    };
    reference
        .iter()
        .map(|r| {
            obtained
                .iter()
                .map(|o| dist(r, o))
                .fold(f64::MAX, f64::min)
        })
        .sum::<f64>()
        / reference.len() as f64
}

/// Spread (Δ-style): standard deviation of consecutive gap lengths along a
/// bi-objective front sorted by the first objective, normalised by the mean
/// gap. 0 = perfectly uniform spacing.
pub fn spread_2d(front: &[(f64, f64)]) -> f64 {
    if front.len() < 3 {
        return 0.0;
    }
    let mut pts = front.to_vec();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let gaps: Vec<f64> = pts
        .windows(2)
        .map(|w| ((w[1].0 - w[0].0).powi(2) + (w[1].1 - w[0].1).powi(2)).sqrt())
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
    var.sqrt() / mean
}

/// `n` evenly spaced points on ZDT1's true front `f2 = 1 − √f1`.
pub fn zdt1_reference_front(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|k| {
            let f1 = k as f64 / (n - 1).max(1) as f64;
            vec![f1, 1.0 - f1.sqrt()]
        })
        .collect()
}

/// `n` evenly spaced points on ZDT2's true front `f2 = 1 − f1²`.
pub fn zdt2_reference_front(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|k| {
            let f1 = k as f64 / (n - 1).max(1) as f64;
            vec![f1, 1.0 - f1 * f1]
        })
        .collect()
}

/// Objective vectors of the non-penalty members of a population slice.
pub fn objective_vectors(fitnesses: &[&Fitness]) -> Vec<Vec<f64>> {
    fitnesses
        .iter()
        .filter(|f| !f.is_penalty())
        .map(|f| f.values().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn igd_zero_when_fronts_match() {
        let reference = zdt1_reference_front(20);
        assert_eq!(igd(&reference, &reference), 0.0);
    }

    #[test]
    fn igd_decreases_as_points_approach_front() {
        let reference = zdt1_reference_front(30);
        let far: Vec<Vec<f64>> = reference.iter().map(|p| vec![p[0], p[1] + 1.0]).collect();
        let near: Vec<Vec<f64>> = reference.iter().map(|p| vec![p[0], p[1] + 0.1]).collect();
        assert!(igd(&near, &reference) < igd(&far, &reference));
        // Each reference point has its shifted twin at distance exactly
        // 0.1, so the nearest-point distance is bounded by (and close to)
        // that.
        let near_igd = igd(&near, &reference);
        assert!(near_igd <= 0.1 + 1e-9 && near_igd > 0.03, "igd {near_igd}");
    }

    #[test]
    fn igd_of_empty_set_is_infinite() {
        assert!(igd(&[], &zdt1_reference_front(5)).is_infinite());
    }

    #[test]
    fn igd_penalises_partial_coverage() {
        // Covering only half the front leaves the rest at a distance.
        let reference = zdt1_reference_front(40);
        let half: Vec<Vec<f64>> = reference[..20].to_vec();
        assert!(igd(&half, &reference) > 0.01);
    }

    #[test]
    fn spread_uniform_vs_clustered() {
        let uniform: Vec<(f64, f64)> =
            (0..10).map(|k| (k as f64 / 9.0, 1.0 - k as f64 / 9.0)).collect();
        let mut clustered = uniform.clone();
        // Push half the points into a tight cluster.
        for p in clustered.iter_mut().take(5) {
            p.0 *= 0.05;
            p.1 = 1.0 - p.0;
        }
        assert!(spread_2d(&uniform) < 1e-9);
        assert!(spread_2d(&clustered) > spread_2d(&uniform));
    }

    #[test]
    fn spread_degenerate_inputs() {
        assert_eq!(spread_2d(&[]), 0.0);
        assert_eq!(spread_2d(&[(0.0, 1.0), (1.0, 0.0)]), 0.0);
    }

    #[test]
    fn reference_fronts_have_expected_shape() {
        let f1 = zdt1_reference_front(11);
        assert_eq!(f1.len(), 11);
        assert_eq!(f1[0], vec![0.0, 1.0]);
        assert!((f1[10][1] - 0.0).abs() < 1e-12);
        let f2 = zdt2_reference_front(11);
        assert!((f2[5][1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn objective_vectors_skip_penalties() {
        let fits = [Fitness::new(vec![0.1, 0.2]),
            Fitness::penalty(2),
            Fitness::new(vec![0.3, 0.4])];
        let refs: Vec<&Fitness> = fits.iter().collect();
        let vecs = objective_vectors(&refs);
        assert_eq!(vecs.len(), 2);
        assert_eq!(vecs[1], vec![0.3, 0.4]);
    }
}
