//! Reproduction-pipeline operators, mirroring the LEAP operator pipeline of
//! the paper's Listing 1:
//!
//! ```text
//! pipe(parents,
//!      ops.random_selection,
//!      ops.clone,
//!      mutate_gaussian(std=context['std'], expected_num_mutations='isotropic',
//!                      hard_bounds=DeepMDRepresentation.bounds),
//!      eval_pool(client=client, size=len(parents)),
//!      rank_ordinal_sort(parents=parents),
//!      crowding_distance_calc,
//!      ops.truncation_selection(size=len(parents),
//!                               key=lambda x: (-x.rank, x.distance)))
//! ```
//!
//! Rust has no lazy generator pipelines, so each operator is a plain
//! function over populations; [`crate::nsga2`] composes them in the same
//! order.

use rand::Rng;

use crate::individual::Individual;

/// Inclusive lower / exclusive-ish upper hard bounds per gene.
pub type Bounds = Vec<(f64, f64)>;

/// Standard normal sample via the Marsaglia polar method (no `rand_distr`
/// dependency; see DESIGN.md §5).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// `ops.random_selection`: pick one parent uniformly at random.
pub fn random_selection<'a, R: Rng + ?Sized>(
    parents: &'a [Individual],
    rng: &mut R,
) -> &'a Individual {
    assert!(!parents.is_empty(), "random_selection on empty population");
    &parents[rng.random_range(0..parents.len())]
}

/// `mutate_gaussian` with `expected_num_mutations='isotropic'`: every gene
/// receives Gaussian noise with its own standard deviation, then is clipped
/// to its hard bounds (LEAP semantics).
pub fn mutate_gaussian<R: Rng + ?Sized>(
    genome: &mut [f64],
    std: &[f64],
    bounds: &[(f64, f64)],
    rng: &mut R,
) {
    assert_eq!(genome.len(), std.len(), "std vector length mismatch");
    assert_eq!(genome.len(), bounds.len(), "bounds length mismatch");
    for ((g, &s), &(lo, hi)) in genome.iter_mut().zip(std.iter()).zip(bounds.iter()) {
        *g += s * gaussian(rng);
        *g = g.clamp(lo, hi);
    }
}

/// Create `count` unevaluated offspring: random parent selection → clone →
/// isotropic Gaussian mutation with hard bounds (Listing 1, lines 2–10).
pub fn create_offspring<R: Rng + ?Sized>(
    parents: &[Individual],
    count: usize,
    std: &[f64],
    bounds: &[(f64, f64)],
    rng: &mut R,
) -> Vec<Individual> {
    (0..count)
        .map(|_| {
            let parent = random_selection(parents, rng);
            let mut child = parent.clone_as_offspring();
            mutate_gaussian(&mut child.genome, std, bounds, rng);
            child
        })
        .collect()
}

/// `ops.truncation_selection(size, key=lambda x: (-x.rank, x.distance))`:
/// keep the `size` best individuals by (ascending rank, descending crowding
/// distance). Requires `rank`/`distance` to be populated (run
/// [`crate::mo::assign_rank_and_crowding`] first).
pub fn truncation_selection(mut pool: Vec<Individual>, size: usize) -> Vec<Individual> {
    assert!(
        pool.iter().all(|i| i.rank != usize::MAX),
        "truncation_selection before rank assignment"
    );
    pool.sort_by(|a, b| {
        a.rank
            .cmp(&b.rank)
            .then_with(|| b.distance.partial_cmp(&a.distance).unwrap_or(std::cmp::Ordering::Equal))
    });
    pool.truncate(size);
    pool
}

/// Uniform-random initial population within per-gene initialisation ranges.
pub fn random_population<R: Rng + ?Sized>(
    size: usize,
    init_ranges: &[(f64, f64)],
    rng: &mut R,
) -> Vec<Individual> {
    (0..size)
        .map(|_| {
            let genome = init_ranges
                .iter()
                .map(|&(lo, hi)| rng.random_range(lo..hi))
                .collect();
            Individual::new(genome)
        })
        .collect()
}

/// Per-generation annealing of the mutation standard deviations: the paper
/// multiplies the σ vector by 0.85 after each generation's offspring are
/// produced (a fixed-rate variant of the 1/5-success-rule annealing).
pub fn anneal_std(std: &mut [f64], factor: f64) {
    for s in std.iter_mut() {
        *s *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::individual::Fitness;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mutation_respects_hard_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let bounds = vec![(0.0, 1.0), (-5.0, 5.0)];
        let std = vec![10.0, 10.0]; // huge σ to force clipping
        for _ in 0..200 {
            let mut genome = vec![0.5, 0.0];
            mutate_gaussian(&mut genome, &std, &bounds, &mut rng);
            assert!((0.0..=1.0).contains(&genome[0]));
            assert!((-5.0..=5.0).contains(&genome[1]));
        }
    }

    #[test]
    fn mutation_is_isotropic_all_genes_move() {
        let mut rng = StdRng::seed_from_u64(2);
        let bounds = vec![(-1e9, 1e9); 4];
        let std = vec![1.0; 4];
        let mut genome = vec![0.0; 4];
        mutate_gaussian(&mut genome, &std, &bounds, &mut rng);
        assert!(genome.iter().all(|&g| g != 0.0));
    }

    #[test]
    fn zero_std_is_identity_within_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut genome = vec![0.25, 0.75];
        mutate_gaussian(&mut genome, &[0.0, 0.0], &[(0.0, 1.0), (0.0, 1.0)], &mut rng);
        assert_eq!(genome, vec![0.25, 0.75]);
    }

    #[test]
    fn create_offspring_clones_and_mutates() {
        let mut rng = StdRng::seed_from_u64(4);
        let parents: Vec<Individual> =
            (0..3).map(|i| Individual::new(vec![i as f64, i as f64])).collect();
        let kids = create_offspring(&parents, 5, &[0.1, 0.1], &[(-10.0, 10.0); 2], &mut rng);
        assert_eq!(kids.len(), 5);
        for k in &kids {
            assert!(k.fitness.is_none());
            assert!(parents.iter().all(|p| p.id != k.id));
        }
    }

    #[test]
    fn truncation_prefers_low_rank_then_high_distance() {
        let mk = |rank, distance| {
            let mut i = Individual::new(vec![0.0]);
            i.fitness = Some(Fitness::new(vec![0.0, 0.0]));
            i.rank = rank;
            i.distance = distance;
            i
        };
        let pool = vec![mk(1, 9.0), mk(0, 0.1), mk(0, 5.0), mk(2, 100.0)];
        let kept = truncation_selection(pool, 2);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].rank, 0);
        assert!((kept[0].distance - 5.0).abs() < 1e-12);
        assert_eq!(kept[1].rank, 0);
        assert!((kept[1].distance - 0.1).abs() < 1e-12);
    }

    #[test]
    fn random_population_within_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let ranges = vec![(3.51e-8, 0.01), (6.0, 12.0)];
        let pop = random_population(50, &ranges, &mut rng);
        assert_eq!(pop.len(), 50);
        for ind in &pop {
            assert!(ind.genome[0] >= 3.51e-8 && ind.genome[0] < 0.01);
            assert!(ind.genome[1] >= 6.0 && ind.genome[1] < 12.0);
        }
    }

    #[test]
    fn anneal_std_applies_factor() {
        let mut std = vec![0.001, 0.0625];
        anneal_std(&mut std, 0.85);
        assert!((std[0] - 0.00085).abs() < 1e-12);
        assert!((std[1] - 0.053125).abs() < 1e-12);
    }
}
