//! A Pareto archive: the best non-dominated set seen across a whole run
//! (the paper aggregates the *final generations* of five runs; an archive
//! additionally guards against good solutions being lost to crowding
//! pressure mid-run).

use crate::individual::{Fitness, Individual};

/// Dominance churn from offering one population to a [`ParetoArchive`]:
/// how many candidates were offered, how many were admitted, and how many
/// existing members were evicted (dominated or crowded out).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArchiveChurn {
    /// Candidates offered (population size).
    pub offered: usize,
    /// Candidates admitted to the archive.
    pub added: usize,
    /// Existing members evicted by the admitted candidates.
    pub evicted: usize,
}

/// An elitist archive of mutually non-dominating individuals, optionally
/// capacity-bounded (evicting the most crowded member first).
#[derive(Clone, Debug, Default)]
pub struct ParetoArchive {
    members: Vec<Individual>,
    capacity: Option<usize>,
}

impl ParetoArchive {
    /// Unbounded archive.
    pub fn new() -> Self {
        ParetoArchive { members: Vec::new(), capacity: None }
    }

    /// Archive that keeps at most `capacity` members.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ParetoArchive { members: Vec::new(), capacity: Some(capacity) }
    }

    /// Current members (mutually non-dominating).
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// Number of archived solutions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when nothing has been archived.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Offer one individual. Penalty fitnesses are ignored; dominated
    /// offers are rejected; members dominated by the offer are evicted.
    /// Returns true if the individual was admitted.
    pub fn offer(&mut self, candidate: &Individual) -> bool {
        self.offer_counted(candidate).0
    }

    /// [`offer`](Self::offer), additionally reporting how many existing
    /// members the offer evicted (dominated members plus any capacity
    /// evictions). `(false, 0)` when the offer was rejected.
    pub fn offer_counted(&mut self, candidate: &Individual) -> (bool, usize) {
        let Some(fitness) = candidate.fitness.as_ref() else {
            return (false, 0);
        };
        if fitness.is_penalty() {
            return (false, 0);
        }
        // Rejected if any member dominates (or duplicates) the candidate.
        for member in &self.members {
            let mf = member.fitness();
            if mf.dominates(fitness) || mf == fitness {
                return (false, 0);
            }
        }
        let before = self.members.len();
        self.members.retain(|member| !fitness.dominates(member.fitness()));
        let mut evicted = before - self.members.len();
        self.members.push(candidate.clone());
        if let Some(cap) = self.capacity {
            while self.members.len() > cap {
                self.evict_most_crowded();
                evicted += 1;
            }
        }
        (true, evicted)
    }

    /// Offer a whole population.
    pub fn offer_all(&mut self, population: &[Individual]) -> usize {
        population.iter().filter(|i| self.offer(i)).count()
    }

    /// Offer a whole population, reporting dominance churn: how many were
    /// offered, admitted, and how many existing members were evicted. The
    /// churn is a deterministic function of the archive state and the
    /// population order, so replaying the same offers reproduces it.
    pub fn offer_all_counted(&mut self, population: &[Individual]) -> ArchiveChurn {
        let mut churn = ArchiveChurn { offered: population.len(), ..ArchiveChurn::default() };
        for individual in population {
            let (added, evicted) = self.offer_counted(individual);
            churn.added += usize::from(added);
            churn.evicted += evicted;
        }
        churn
    }

    fn evict_most_crowded(&mut self) {
        let fitnesses: Vec<&Fitness> = self.members.iter().map(|m| m.fitness()).collect();
        let front: Vec<usize> = (0..fitnesses.len()).collect();
        let distances = crate::mo::crowding_distance(&fitnesses, &front);
        if let Some((idx, _)) = distances
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        {
            self.members.swap_remove(idx);
        }
    }

    /// The archive's objective pairs (for hypervolume/IGD computation),
    /// valid for two-objective archives.
    pub fn objective_pairs(&self) -> Vec<(f64, f64)> {
        self.members
            .iter()
            .map(|m| (m.fitness().get(0), m.fitness().get(1)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ind(e: f64, f: f64) -> Individual {
        let mut i = Individual::new(vec![0.0]);
        i.fitness = Some(Fitness::new(vec![e, f]));
        i
    }

    #[test]
    fn archive_keeps_only_nondominated() {
        let mut archive = ParetoArchive::new();
        assert!(archive.offer(&ind(1.0, 4.0)));
        assert!(archive.offer(&ind(2.0, 3.0)));
        // Dominated by (2,3):
        assert!(!archive.offer(&ind(2.5, 3.5)));
        assert_eq!(archive.len(), 2);
        // A dominator evicts:
        assert!(archive.offer(&ind(0.5, 2.0)));
        assert_eq!(archive.len(), 1);
        assert_eq!(archive.members()[0].fitness().values(), &[0.5, 2.0]);
    }

    #[test]
    fn duplicates_and_penalties_rejected() {
        let mut archive = ParetoArchive::new();
        assert!(archive.offer(&ind(1.0, 1.0)));
        assert!(!archive.offer(&ind(1.0, 1.0)), "exact duplicate admitted");
        let mut failed = Individual::new(vec![0.0]);
        failed.fitness = Some(Fitness::penalty(2));
        assert!(!archive.offer(&failed));
        let unevaluated = Individual::new(vec![0.0]);
        assert!(!archive.offer(&unevaluated));
    }

    #[test]
    fn capacity_evicts_most_crowded() {
        let mut archive = ParetoArchive::with_capacity(3);
        // Four non-dominated points; two clustered tightly.
        archive.offer(&ind(0.0, 10.0));
        archive.offer(&ind(5.0, 5.0));
        archive.offer(&ind(5.1, 4.9));
        archive.offer(&ind(10.0, 0.0));
        assert_eq!(archive.len(), 3);
        // The boundary points survive; one of the clustered pair is gone.
        let pairs = archive.objective_pairs();
        assert!(pairs.contains(&(0.0, 10.0)));
        assert!(pairs.contains(&(10.0, 0.0)));
        let clustered = pairs
            .iter()
            .filter(|&&(e, _)| (4.9..=5.2).contains(&e))
            .count();
        assert_eq!(clustered, 1);
    }

    #[test]
    fn offer_all_counts_admissions() {
        let mut archive = ParetoArchive::new();
        let pop = vec![ind(1.0, 4.0), ind(2.0, 3.0), ind(2.5, 3.5)];
        assert_eq!(archive.offer_all(&pop), 2);
    }

    #[test]
    fn offer_all_counted_reports_churn() {
        let mut archive = ParetoArchive::new();
        archive.offer(&ind(1.0, 4.0));
        archive.offer(&ind(2.0, 3.0));
        // (0.5, 2.0) dominates both members; (2.5, 3.5) is dominated.
        let pop = vec![ind(0.5, 2.0), ind(2.5, 3.5)];
        let churn = archive.offer_all_counted(&pop);
        assert_eq!(churn, ArchiveChurn { offered: 2, added: 1, evicted: 2 });
        assert_eq!(archive.len(), 1);
    }

    #[test]
    fn offer_counted_includes_capacity_evictions() {
        let mut archive = ParetoArchive::with_capacity(2);
        archive.offer(&ind(0.0, 10.0));
        archive.offer(&ind(10.0, 0.0));
        let (added, evicted) = archive.offer_counted(&ind(5.0, 5.0));
        assert!(added);
        assert_eq!(evicted, 1, "capacity eviction must be counted");
        assert_eq!(archive.len(), 2);
    }
}
