//! Individuals, genomes, and multi-objective fitness values.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel fitness value assigned to failed evaluations.
///
/// The paper assigns `MAXINT` to both objectives whenever training fails
/// (timeout, divergence, node failure) instead of `NaN`, because NSGA-II
/// sorts fitnesses and sorting `NaN`s is undefined behaviour in Python and
/// an ordering headache everywhere else. We mirror that: a large, finite,
/// totally ordered penalty.
pub const MAXINT: f64 = i64::MAX as f64;

/// A multi-objective fitness vector; **all objectives are minimised**.
#[derive(Clone, Debug, PartialEq)]
pub struct Fitness {
    objectives: Vec<f64>,
}

impl Fitness {
    /// Wrap raw objective values. Panics on NaN — use [`Fitness::penalty`]
    /// for failed evaluations instead.
    pub fn new(objectives: Vec<f64>) -> Self {
        assert!(
            objectives.iter().all(|v| !v.is_nan()),
            "NaN objective; use Fitness::penalty for failed evaluations"
        );
        Fitness { objectives }
    }

    /// The paper's MAXINT penalty fitness for `n` objectives.
    pub fn penalty(n: usize) -> Self {
        Fitness { objectives: vec![MAXINT; n] }
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// True when there are no objectives (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Objective values.
    pub fn values(&self) -> &[f64] {
        &self.objectives
    }

    /// A single objective value.
    pub fn get(&self, m: usize) -> f64 {
        self.objectives[m]
    }

    /// True if this fitness carries the failure penalty.
    pub fn is_penalty(&self) -> bool {
        self.objectives.iter().all(|&v| v >= MAXINT)
    }

    /// Pareto dominance under minimisation: `self` dominates `other` iff it
    /// is no worse in every objective and strictly better in at least one.
    pub fn dominates(&self, other: &Fitness) -> bool {
        assert_eq!(self.len(), other.len(), "objective count mismatch");
        let mut strictly_better = false;
        for (a, b) in self.objectives.iter().zip(other.objectives.iter()) {
            if a > b {
                return false;
            }
            if a < b {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

impl fmt::Display for Fitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.objectives.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *v >= MAXINT {
                write!(f, "MAXINT")?;
            } else {
                write!(f, "{v:.6}")?;
            }
        }
        write!(f, ")")
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A unique individual identifier, used (as in the paper) to key the
/// per-evaluation working directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(u64);

impl Id {
    /// Allocate a fresh process-unique id.
    pub fn fresh() -> Self {
        Id(NEXT_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw counter value.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuild an id from its raw value — used when restoring individuals
    /// from a journal. Call [`Id::advance_past`] afterwards so freshly
    /// allocated ids cannot collide with restored ones.
    pub fn from_raw(raw: u64) -> Self {
        Id(raw)
    }

    /// Advance the process-wide id counter past `raw`, ensuring every
    /// subsequent [`Id::fresh`] exceeds it. Idempotent and monotone.
    pub fn advance_past(raw: u64) {
        NEXT_ID.fetch_max(raw.saturating_add(1), Ordering::Relaxed);
    }
}

impl fmt::Display for Id {
    /// UUID-flavoured rendering so run directories look like the paper's.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        write!(
            f,
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (v >> 32) as u32,
            (v >> 16) as u16,
            v as u16,
            (v.rotate_left(17) & 0xffff) as u16,
            v.wrapping_mul(0x9e37_79b9_7f4a_7c15) & 0xffff_ffff_ffff
        )
    }
}

/// One member of a population: a real-valued genome plus evaluation state.
#[derive(Clone, Debug)]
pub struct Individual {
    /// Process-unique identity (new identity per clone-and-mutate offspring).
    pub id: Id,
    /// Real-valued genome (the paper's seven-element vector, or anything else).
    pub genome: Vec<f64>,
    /// Fitness, if evaluated.
    pub fitness: Option<Fitness>,
    /// Non-domination rank (0 = best front), set by the sorting pass.
    pub rank: usize,
    /// Crowding distance within its front.
    pub distance: f64,
    /// Auxiliary evaluation metadata (e.g. simulated runtime minutes).
    pub eval_minutes: Option<f64>,
}

impl Individual {
    /// A fresh, unevaluated individual around `genome`.
    pub fn new(genome: Vec<f64>) -> Self {
        Individual {
            id: Id::fresh(),
            genome,
            fitness: None,
            rank: usize::MAX,
            distance: 0.0,
            eval_minutes: None,
        }
    }

    /// Clone the genome into a fresh individual with a new identity and no
    /// fitness — the pipeline `clone` operator of Listing 1.
    pub fn clone_as_offspring(&self) -> Self {
        Individual::new(self.genome.clone())
    }

    /// The fitness; panics if the individual was never evaluated.
    pub fn fitness(&self) -> &Fitness {
        self.fitness.as_ref().expect("individual not evaluated")
    }

    /// True if evaluated and carrying the MAXINT penalty.
    pub fn is_failed(&self) -> bool {
        self.fitness.as_ref().is_some_and(|f| f.is_penalty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_minimisation_semantics() {
        let a = Fitness::new(vec![1.0, 2.0]);
        let b = Fitness::new(vec![2.0, 3.0]);
        let c = Fitness::new(vec![0.5, 4.0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    #[test]
    fn equal_fitness_does_not_dominate() {
        let a = Fitness::new(vec![1.0, 2.0]);
        assert!(!a.dominates(&a.clone()));
    }

    #[test]
    fn weak_improvement_dominates() {
        let a = Fitness::new(vec![1.0, 2.0]);
        let b = Fitness::new(vec![1.0, 2.5]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn penalty_is_dominated_by_everything_finite() {
        let p = Fitness::penalty(2);
        let a = Fitness::new(vec![1.0, 1.0]);
        assert!(p.is_penalty());
        assert!(!a.is_penalty());
        assert!(a.dominates(&p));
        assert!(!p.dominates(&a));
        // Two penalties are mutually non-dominating — they sort together.
        assert!(!p.dominates(&Fitness::penalty(2)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Fitness::new(vec![f64::NAN, 1.0]);
    }

    #[test]
    fn restored_ids_never_collide_with_fresh_ones() {
        let restored = Id::from_raw(5_000_000);
        Id::advance_past(restored.raw());
        let fresh = Id::fresh();
        assert!(fresh.raw() > restored.raw());
        // Idempotent: advancing past an older id changes nothing.
        Id::advance_past(1);
        assert!(Id::fresh().raw() > fresh.raw());
    }

    #[test]
    fn ids_are_unique_and_display_like_uuids() {
        let a = Id::fresh();
        let b = Id::fresh();
        assert_ne!(a, b);
        let s = a.to_string();
        assert_eq!(s.split('-').count(), 5);
        assert_eq!(s.len(), 36);
    }

    #[test]
    fn clone_as_offspring_resets_state() {
        let mut parent = Individual::new(vec![1.0, 2.0]);
        parent.fitness = Some(Fitness::new(vec![0.1, 0.2]));
        parent.rank = 0;
        parent.distance = 1.5;
        let child = parent.clone_as_offspring();
        assert_eq!(child.genome, parent.genome);
        assert_ne!(child.id, parent.id);
        assert!(child.fitness.is_none());
        assert_eq!(child.rank, usize::MAX);
    }
}
