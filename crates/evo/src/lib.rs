//! # dphpo-evo
//!
//! An evolutionary-algorithm library providing everything the paper's
//! LEAP-based implementation used: pipeline reproduction operators
//! (selection, cloning, bounded Gaussian mutation), multi-objective
//! machinery (Pareto dominance, Deb's fast non-dominated sort, a rank-based
//! efficient sort, crowding distance, hypervolume), the MAXINT failure-
//! penalty convention, a generational NSGA-II driver with the paper's
//! per-generation mutation-σ annealing, and the steady-state (asynchronous)
//! insertion machinery in [`steady`] used by barrier-free campaigns.
//!
//! The library is deliberately general: [`problems`] ships ZDT/DTLZ
//! benchmarks so the optimizer can be validated independently of the DNNP
//! hyperparameter workload built on top of it in `dphpo-core`.
//!
//! ## Example: NSGA-II on ZDT1
//!
//! ```
//! use dphpo_evo::individual::Fitness;
//! use dphpo_evo::nsga2::{run_nsga2, EvalResult, Nsga2Config};
//! use dphpo_evo::problems::zdt1;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let problem = zdt1();
//! let config = Nsga2Config {
//!     pop_size: 16,
//!     generations: 5,
//!     init_ranges: problem.bounds(),
//!     bounds: problem.bounds(),
//!     std: vec![0.1; problem.dims()],
//!     anneal_factor: 0.85,
//! };
//! let mut evaluator = |genomes: &[Vec<f64>]| {
//!     genomes
//!         .iter()
//!         .map(|g| EvalResult::fitness(Fitness::new(problem.evaluate(g))))
//!         .collect::<Vec<_>>()
//! };
//! let mut rng = StdRng::seed_from_u64(0);
//! let result = run_nsga2(&config, &mut evaluator, &mut rng);
//! assert_eq!(result.history.len(), 6);
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod individual;
pub mod metrics;
pub mod mo;
pub mod nsga2;
pub mod ops;
pub mod problems;
pub mod steady;

pub use individual::{Fitness, Id, Individual, MAXINT};
pub use mo::{
    assign_rank_and_crowding, crowding_distance, fast_nondominated_sort, hypervolume_2d,
    pareto_front, rank_ordinal_sort, Fronts,
};
pub use archive::{ArchiveChurn, ParetoArchive};
pub use metrics::{
    front_stats_2d, hypervolume, igd, spread_2d, zdt1_reference_front, zdt2_reference_front,
    FrontStats,
};
pub use nsga2::{
    run_nsga2, BatchEvaluator, EvalResult, GenerationRecord, Nsga2Config, Nsga2State, RunResult,
};
pub use steady::{ArrivalWindow, SteadyState};
