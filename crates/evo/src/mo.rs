//! Multi-objective machinery: non-dominated sorting, crowding distance,
//! Pareto-front extraction, and the 2-D hypervolume indicator.
//!
//! Two sorting algorithms are provided, mirroring the paper's §2.1.4:
//!
//! * [`fast_nondominated_sort`] — the classic Deb et al. (2002) O(M·N²)
//!   algorithm from the original NSGA-II paper.
//! * [`rank_ordinal_sort`] — a rank-based efficient non-dominated sort in
//!   the spirit of Burlacu (2022): objectives are first converted to dense
//!   integer ordinal ranks (so all dominance tests are integer compares),
//!   individuals are processed in lexicographic rank order, and each is
//!   placed with a binary search over existing fronts (ENS-BS). For the
//!   two-objective case the per-front dominance test collapses to a single
//!   comparison, giving O(N log N) behaviour — the "significant speed-up"
//!   the paper relies on.
//!
//! Both produce identical front assignments (property-tested).

use crate::individual::{Fitness, Individual};

/// Result of a non-dominated sorting pass: `fronts[k]` holds the indices of
/// the individuals on front `k` (front 0 is the Pareto-best front).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fronts {
    fronts: Vec<Vec<usize>>,
}

impl Fronts {
    /// The front index assigned to each individual.
    pub fn ranks(&self, n: usize) -> Vec<usize> {
        let mut ranks = vec![usize::MAX; n];
        for (k, front) in self.fronts.iter().enumerate() {
            for &i in front {
                ranks[i] = k;
            }
        }
        ranks
    }

    /// Access the raw fronts.
    pub fn as_slice(&self) -> &[Vec<usize>] {
        &self.fronts
    }

    /// Number of fronts.
    pub fn len(&self) -> usize {
        self.fronts.len()
    }

    /// True when there are no fronts (empty population).
    pub fn is_empty(&self) -> bool {
        self.fronts.is_empty()
    }

    /// Canonicalise for comparisons: sorts indices within fronts.
    pub fn normalised(mut self) -> Self {
        for f in &mut self.fronts {
            f.sort_unstable();
        }
        self
    }
}

/// Deb's fast non-dominated sort, O(M·N²).
pub fn fast_nondominated_sort(fitnesses: &[&Fitness]) -> Fronts {
    let n = fitnesses.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut domination_count = vec![0usize; n];
    let mut fronts: Vec<Vec<usize>> = Vec::new();

    for p in 0..n {
        for q in (p + 1)..n {
            if fitnesses[p].dominates(fitnesses[q]) {
                dominated_by[p].push(q);
                domination_count[q] += 1;
            } else if fitnesses[q].dominates(fitnesses[p]) {
                dominated_by[q].push(p);
                domination_count[p] += 1;
            }
        }
    }

    let mut current: Vec<usize> = (0..n).filter(|&p| domination_count[p] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominated_by[p] {
                domination_count[q] -= 1;
                if domination_count[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    Fronts { fronts }
}

/// Dense per-objective ordinal ranks: equal objective values get equal
/// ranks, so dominance on ranks is exactly dominance on values.
#[allow(clippy::needless_range_loop)] // `obj` addresses a column across rows
fn ordinal_ranks(fitnesses: &[&Fitness]) -> Vec<Vec<u32>> {
    let n = fitnesses.len();
    if n == 0 {
        return Vec::new();
    }
    let m = fitnesses[0].len();
    let mut ranks = vec![vec![0u32; m]; n];
    let mut order: Vec<usize> = (0..n).collect();
    for obj in 0..m {
        order.sort_unstable_by(|&a, &b| {
            fitnesses[a].get(obj).partial_cmp(&fitnesses[b].get(obj)).unwrap()
        });
        let mut rank = 0u32;
        for (pos, &i) in order.iter().enumerate() {
            if pos > 0 {
                let prev = order[pos - 1];
                if fitnesses[i].get(obj) > fitnesses[prev].get(obj) {
                    rank += 1;
                }
            }
            ranks[i][obj] = rank;
        }
    }
    ranks
}

/// Rank-based efficient non-dominated sort (ENS-BS over ordinal ranks).
///
/// Produces the same fronts as [`fast_nondominated_sort`] but much faster on
/// large populations; all dominance tests are integer comparisons.
pub fn rank_ordinal_sort(fitnesses: &[&Fitness]) -> Fronts {
    let n = fitnesses.len();
    if n == 0 {
        return Fronts { fronts: Vec::new() };
    }
    let m = fitnesses[0].len();
    let ranks = ordinal_ranks(fitnesses);

    // Lexicographic order over rank vectors: no later individual can
    // dominate an earlier one.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| ranks[a].cmp(&ranks[b]));

    // Integer-rank dominance (a dominates b).
    let dominates = |a: usize, b: usize| -> bool {
        let mut strictly = false;
        for (ra, rb) in ranks[a].iter().zip(&ranks[b]) {
            if ra > rb {
                return false;
            }
            if ra < rb {
                strictly = true;
            }
        }
        strictly
    };

    let mut fronts: Vec<Vec<usize>> = Vec::new();
    // For the bi-objective fast path: the minimum second-objective rank seen
    // in each front. Because insertion order is lexicographic, candidate `i`
    // is dominated by some member of front `k` iff min_r2[k] < ranks[i][1],
    // or min_r2[k] == ranks[i][1] with a strictly smaller first objective —
    // the latter is impossible to decide from min_r2 alone, so we track the
    // pair (min_r2, whether it came from an identical rank vector). Simpler
    // and still exact: a front dominates `i` iff its minimum r2 member has
    // r2 < r_i2, OR r2 == r_i2 and that member's r1 < r_i1. We store both.
    let mut best_in_front: Vec<(u32, u32)> = Vec::new(); // (min r2, r1 of that member)

    let dominated_pair = |front_best: (u32, u32), cand: &[u32]| -> bool {
        let (r2, r1) = front_best;
        (r1 < cand[0] && r2 <= cand[1]) || (r1 <= cand[0] && r2 < cand[1])
    };

    for &i in &order {
        // Binary search for the first front that does NOT dominate i.
        let mut lo = 0usize;
        let mut hi = fronts.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let dominated = if m == 2 {
                dominated_pair(best_in_front[mid], &ranks[i])
            } else {
                fronts[mid].iter().any(|&j| dominates(j, i))
            };
            if dominated {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == fronts.len() {
            fronts.push(Vec::new());
            if m == 2 {
                best_in_front.push((u32::MAX, u32::MAX));
            }
        }
        fronts[lo].push(i);
        if m == 2 {
            let entry = &mut best_in_front[lo];
            if ranks[i][1] < entry.0 || (ranks[i][1] == entry.0 && ranks[i][0] < entry.1) {
                *entry = (ranks[i][1], ranks[i][0]);
            }
        }
    }
    Fronts { fronts }
}

/// Crowding distance (Deb 2002) for one front. Boundary solutions get
/// `f64::INFINITY`; returns one distance per member of `front`.
pub fn crowding_distance(fitnesses: &[&Fitness], front: &[usize]) -> Vec<f64> {
    let len = front.len();
    if len == 0 {
        return Vec::new();
    }
    if len <= 2 {
        return vec![f64::INFINITY; len];
    }
    let m = fitnesses[front[0]].len();
    let mut distance = vec![0.0f64; len];
    let mut order: Vec<usize> = (0..len).collect(); // positions into `front`
    for obj in 0..m {
        order.sort_unstable_by(|&a, &b| {
            fitnesses[front[a]]
                .get(obj)
                .partial_cmp(&fitnesses[front[b]].get(obj))
                .unwrap()
        });
        let fmin = fitnesses[front[order[0]]].get(obj);
        let fmax = fitnesses[front[order[len - 1]]].get(obj);
        distance[order[0]] = f64::INFINITY;
        distance[order[len - 1]] = f64::INFINITY;
        let span = fmax - fmin;
        if span <= 0.0 || !span.is_finite() {
            continue;
        }
        for w in 1..len - 1 {
            let lo = fitnesses[front[order[w - 1]]].get(obj);
            let hi = fitnesses[front[order[w + 1]]].get(obj);
            distance[order[w]] += (hi - lo) / span;
        }
    }
    distance
}

/// Run a sorting pass and annotate `rank` and `distance` on each individual,
/// mirroring the paper's `rank_ordinal_sort(...)` →
/// `crowding_distance_calc` pipeline stages.
pub fn assign_rank_and_crowding(pop: &mut [Individual]) {
    let fitnesses: Vec<&Fitness> = pop.iter().map(|i| i.fitness()).collect();
    let fronts = rank_ordinal_sort(&fitnesses);
    let ranks = fronts.ranks(pop.len());
    let mut distances = vec![0.0f64; pop.len()];
    for front in fronts.as_slice() {
        let d = crowding_distance(&fitnesses, front);
        for (&i, &di) in front.iter().zip(d.iter()) {
            distances[i] = di;
        }
    }
    for (ind, (r, d)) in pop.iter_mut().zip(ranks.into_iter().zip(distances)) {
        ind.rank = r;
        ind.distance = d;
    }
}

/// Indices of the non-dominated (Pareto-optimal) members of `fitnesses`.
pub fn pareto_front(fitnesses: &[&Fitness]) -> Vec<usize> {
    let fronts = rank_ordinal_sort(fitnesses);
    fronts.as_slice().first().cloned().unwrap_or_default()
}

/// Exact 2-D hypervolume dominated by `front` with respect to `reference`
/// (both objectives minimised; points outside the reference box contribute
/// their clipped area only).
pub fn hypervolume_2d(front: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .copied()
        .filter(|&(a, b)| a < reference.0 && b < reference.1)
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.partial_cmp(&b.1).unwrap()));
    let mut hv = 0.0;
    let mut best_f2 = reference.1;
    for &(f1, f2) in &pts {
        if f2 < best_f2 {
            hv += (reference.0 - f1) * (best_f2 - f2);
            best_f2 = f2;
        }
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fits(values: &[(f64, f64)]) -> Vec<Fitness> {
        values.iter().map(|&(a, b)| Fitness::new(vec![a, b])).collect()
    }

    fn refs(f: &[Fitness]) -> Vec<&Fitness> {
        f.iter().collect()
    }

    #[test]
    fn deb_sort_simple_fronts() {
        let f = fits(&[(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (2.5, 3.5), (4.0, 4.0)]);
        let fronts = fast_nondominated_sort(&refs(&f)).normalised();
        assert_eq!(fronts.as_slice()[0], vec![0, 1, 2]);
        assert_eq!(fronts.as_slice()[1], vec![3]);
        assert_eq!(fronts.as_slice()[2], vec![4]);
    }

    #[test]
    fn rank_ordinal_matches_deb_on_simple_case() {
        let f = fits(&[(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (2.5, 3.5), (4.0, 4.0)]);
        let a = fast_nondominated_sort(&refs(&f)).normalised();
        let b = rank_ordinal_sort(&refs(&f)).normalised();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicates_share_a_front() {
        let f = fits(&[(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]);
        let fronts = rank_ordinal_sort(&refs(&f)).normalised();
        assert_eq!(fronts.as_slice()[0], vec![0, 1]);
        assert_eq!(fronts.as_slice()[1], vec![2]);
    }

    #[test]
    fn single_chain_gives_one_front_each() {
        let f = fits(&[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        let fronts = rank_ordinal_sort(&refs(&f));
        assert_eq!(fronts.len(), 3);
    }

    #[test]
    fn all_nondominated_single_front() {
        let f = fits(&[(1.0, 5.0), (2.0, 4.0), (3.0, 3.0), (4.0, 2.0), (5.0, 1.0)]);
        let fronts = rank_ordinal_sort(&refs(&f));
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts.as_slice()[0].len(), 5);
    }

    #[test]
    fn penalties_land_on_worst_front() {
        let f = vec![
            Fitness::new(vec![1.0, 1.0]),
            Fitness::penalty(2),
            Fitness::new(vec![2.0, 0.5]),
            Fitness::penalty(2),
        ];
        let fronts = rank_ordinal_sort(&refs(&f)).normalised();
        assert_eq!(fronts.len(), 2);
        assert_eq!(fronts.as_slice()[1], vec![1, 3]);
    }

    #[test]
    fn three_objective_sorting_agrees() {
        let f = vec![
            Fitness::new(vec![1.0, 2.0, 3.0]),
            Fitness::new(vec![2.0, 1.0, 3.0]),
            Fitness::new(vec![2.0, 2.0, 4.0]),
            Fitness::new(vec![1.0, 1.0, 1.0]),
            Fitness::new(vec![3.0, 3.0, 3.0]),
        ];
        let a = fast_nondominated_sort(&refs(&f)).normalised();
        let b = rank_ordinal_sort(&refs(&f)).normalised();
        assert_eq!(a, b);
        // (1,1,1) dominates everything.
        assert_eq!(a.as_slice()[0], vec![3]);
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let f = fits(&[(1.0, 5.0), (2.0, 4.0), (3.0, 3.0), (4.0, 2.0), (5.0, 1.0)]);
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&refs(&f), &front);
        assert!(d[0].is_infinite());
        assert!(d[4].is_infinite());
        // Uniform spacing → equal interior distances.
        assert!((d[1] - d[2]).abs() < 1e-12);
        assert!((d[2] - d[3]).abs() < 1e-12);
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        let f = fits(&[(1.0, 2.0), (2.0, 1.0)]);
        let d = crowding_distance(&refs(&f), &[0, 1]);
        assert!(d.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn crowding_prefers_spread() {
        // Middle point crowded between close neighbours gets a smaller
        // distance than an isolated one.
        let f = fits(&[(0.0, 10.0), (1.0, 9.0), (1.1, 8.9), (5.0, 5.0), (10.0, 0.0)]);
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&refs(&f), &front);
        assert!(d[3] > d[1]);
        assert!(d[3] > d[2]);
    }

    #[test]
    fn pareto_front_extraction() {
        let f = fits(&[(1.0, 4.0), (2.0, 3.0), (2.5, 3.5), (3.0, 2.0)]);
        let mut pf = pareto_front(&refs(&f));
        pf.sort_unstable();
        assert_eq!(pf, vec![0, 1, 3]);
    }

    #[test]
    fn hypervolume_known_values() {
        // Single point (1,1) with reference (2,2): area 1.
        assert!((hypervolume_2d(&[(1.0, 1.0)], (2.0, 2.0)) - 1.0).abs() < 1e-12);
        // Two staircase points.
        let hv = hypervolume_2d(&[(1.0, 3.0), (2.0, 1.0)], (4.0, 4.0));
        // (1,3): (4-1)*(4-3)=3; (2,1): (4-2)*(3-1)=4 → 7.
        assert!((hv - 7.0).abs() < 1e-12);
        // Dominated point adds nothing.
        let hv2 = hypervolume_2d(&[(1.0, 3.0), (2.0, 1.0), (3.0, 3.5)], (4.0, 4.0));
        assert!((hv2 - 7.0).abs() < 1e-12);
        // Points outside the reference box contribute nothing.
        assert_eq!(hypervolume_2d(&[(5.0, 5.0)], (4.0, 4.0)), 0.0);
    }

    #[test]
    fn assign_rank_and_crowding_annotates() {
        let mut pop: Vec<Individual> = [(1.0, 4.0), (2.0, 3.0), (2.5, 3.5)]
            .iter()
            .map(|&(a, b)| {
                let mut ind = Individual::new(vec![0.0]);
                ind.fitness = Some(Fitness::new(vec![a, b]));
                ind
            })
            .collect();
        assign_rank_and_crowding(&mut pop);
        assert_eq!(pop[0].rank, 0);
        assert_eq!(pop[1].rank, 0);
        assert_eq!(pop[2].rank, 1);
        assert!(pop[0].distance.is_infinite());
    }
}
