//! Classic multi-objective benchmark problems (ZDT, DTLZ) used to validate
//! the NSGA-II implementation independently of the DNNP workload, plus a
//! sphere function for single-objective sanity checks.

/// A real-valued vector optimisation problem (all objectives minimised).
pub struct Problem {
    name: &'static str,
    dims: usize,
    objectives: usize,
    bounds: Vec<(f64, f64)>,
    eval: fn(&[f64]) -> Vec<f64>,
}

impl Problem {
    /// Problem name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Decision-space dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of objectives.
    pub fn objectives(&self) -> usize {
        self.objectives
    }

    /// Per-variable bounds.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        self.bounds.clone()
    }

    /// Evaluate the objective vector at `x`.
    pub fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dims, "{}: wrong dimensionality", self.name);
        (self.eval)(x)
    }
}

fn zdt_g(x: &[f64]) -> f64 {
    let tail = &x[1..];
    1.0 + 9.0 * tail.iter().sum::<f64>() / tail.len() as f64
}

fn zdt1_eval(x: &[f64]) -> Vec<f64> {
    let f1 = x[0];
    let g = zdt_g(x);
    vec![f1, g * (1.0 - (f1 / g).sqrt())]
}

fn zdt2_eval(x: &[f64]) -> Vec<f64> {
    let f1 = x[0];
    let g = zdt_g(x);
    vec![f1, g * (1.0 - (f1 / g) * (f1 / g))]
}

fn zdt3_eval(x: &[f64]) -> Vec<f64> {
    let f1 = x[0];
    let g = zdt_g(x);
    let ratio = f1 / g;
    vec![
        f1,
        g * (1.0 - ratio.sqrt() - ratio * (10.0 * std::f64::consts::PI * f1).sin()),
    ]
}

fn dtlz2_eval(x: &[f64]) -> Vec<f64> {
    // 3-objective DTLZ2 with k = dims - 2 distance variables.
    let m = 3;
    let k_start = m - 1;
    let g: f64 = x[k_start..].iter().map(|&v| (v - 0.5) * (v - 0.5)).sum();
    let half_pi = std::f64::consts::FRAC_PI_2;
    let f1 = (1.0 + g) * (x[0] * half_pi).cos() * (x[1] * half_pi).cos();
    let f2 = (1.0 + g) * (x[0] * half_pi).cos() * (x[1] * half_pi).sin();
    let f3 = (1.0 + g) * (x[0] * half_pi).sin();
    vec![f1, f2, f3]
}

fn sphere_eval(x: &[f64]) -> Vec<f64> {
    vec![x.iter().map(|&v| v * v).sum()]
}

/// ZDT1: convex Pareto front `f2 = 1 - √f1` at `g = 1`.
pub fn zdt1() -> Problem {
    Problem { name: "ZDT1", dims: 30, objectives: 2, bounds: vec![(0.0, 1.0); 30], eval: zdt1_eval }
}

/// ZDT2: concave Pareto front `f2 = 1 - f1²` at `g = 1`.
pub fn zdt2() -> Problem {
    Problem { name: "ZDT2", dims: 30, objectives: 2, bounds: vec![(0.0, 1.0); 30], eval: zdt2_eval }
}

/// ZDT3: disconnected Pareto front.
pub fn zdt3() -> Problem {
    Problem { name: "ZDT3", dims: 30, objectives: 2, bounds: vec![(0.0, 1.0); 30], eval: zdt3_eval }
}

/// DTLZ2 with three objectives; Pareto front is the unit-sphere octant.
pub fn dtlz2() -> Problem {
    Problem { name: "DTLZ2", dims: 12, objectives: 3, bounds: vec![(0.0, 1.0); 12], eval: dtlz2_eval }
}

/// Sphere function, single objective, minimum 0 at the origin.
pub fn sphere(dims: usize) -> Problem {
    assert!(dims > 0 && dims <= 64, "sphere dims out of supported range");
    // Leaked bounds are fine: problems are created a handful of times.
    Problem {
        name: "sphere",
        dims,
        objectives: 1,
        bounds: vec![(-5.0, 5.0); dims],
        eval: sphere_eval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zdt1_known_values() {
        let p = zdt1();
        // On the Pareto front (tail all zero): g = 1, f2 = 1 - √f1.
        let mut x = vec![0.0; 30];
        x[0] = 0.25;
        let f = p.evaluate(&x);
        assert!((f[0] - 0.25).abs() < 1e-12);
        assert!((f[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zdt2_front_is_concave() {
        let p = zdt2();
        let mut x = vec![0.0; 30];
        x[0] = 0.5;
        let f = p.evaluate(&x);
        assert!((f[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zdt3_oscillates() {
        let p = zdt3();
        let mut x = vec![0.0; 30];
        x[0] = 0.1;
        let a = p.evaluate(&x)[1];
        x[0] = 0.2;
        let b = p.evaluate(&x)[1];
        // The sine term makes the front non-monotonic in places; just check
        // finite, sensible output.
        assert!(a.is_finite() && b.is_finite());
    }

    #[test]
    fn zdt_off_front_dominated_by_on_front() {
        let p = zdt1();
        let mut on = vec![0.0; 30];
        on[0] = 0.5;
        let mut off = vec![0.3; 30];
        off[0] = 0.5;
        let f_on = p.evaluate(&on);
        let f_off = p.evaluate(&off);
        assert!(f_on[1] < f_off[1], "tail variables must worsen f2");
    }

    #[test]
    fn dtlz2_on_front_is_unit_sphere() {
        let p = dtlz2();
        let mut x = vec![0.5; 12];
        x[0] = 0.3;
        x[1] = 0.7;
        let f = p.evaluate(&x);
        let norm: f64 = f.iter().map(|v| v * v).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9, "norm² {norm}");
    }

    #[test]
    fn sphere_minimum_at_origin() {
        let p = sphere(4);
        assert_eq!(p.evaluate(&[0.0; 4])[0], 0.0);
        assert!(p.evaluate(&[1.0, 0.0, 0.0, 0.0])[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dims_panics() {
        zdt1().evaluate(&[0.0; 3]);
    }
}
