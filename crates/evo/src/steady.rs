//! Steady-state NSGA-II: the asynchronous counterpart of the generational
//! driver in [`crate::nsga2`], after the `steady_state_nsga_2` pattern the
//! paper's authors use with leap_ec over Dask.
//!
//! Instead of evaluating a whole offspring batch behind a barrier, a
//! steady-state campaign *tells* the population about each evaluated
//! individual the moment it arrives and immediately *breeds* a replacement
//! child, so no worker ever waits on a generation boundary. Determinism is
//! preserved by decoupling the two orders involved:
//!
//! * the **completion order** — the racy, physical order in which worker
//!   threads happen to finish — is never consumed directly; completions are
//!   buffered in an [`ArrivalWindow`];
//! * the **arrival order** — a pure function of the campaign configuration
//!   (the simulated per-slot clock in `dphpo-hpc`'s stream scheduler) — is
//!   the only order [`SteadyState::tell`] ever sees, and the order the
//!   journal records as each evaluation's `arrival` index.
//!
//! Every selection and mutation decision is keyed off that arrival index,
//! so the population and archive bytes depend only on the journaled order,
//! never on thread interleaving (see DESIGN.md §12).

use std::collections::BTreeMap;

use rand::Rng;

use crate::individual::Individual;
use crate::mo::assign_rank_and_crowding;
use crate::nsga2::Nsga2Config;
use crate::ops::{anneal_std, mutate_gaussian, random_selection, truncation_selection};

/// Incremental NSGA-II survivor state for a steady-state campaign: a
/// bounded population that absorbs one evaluated individual per call and a
/// mutation-σ schedule annealed every `pop_size` arrivals (one "epoch" —
/// the steady-state analogue of a generation, used for reporting and for
/// matching the generational σ schedule at equal evaluation budget).
pub struct SteadyState {
    capacity: usize,
    anneal_factor: f64,
    bounds: Vec<(f64, f64)>,
    std: Vec<f64>,
    population: Vec<Individual>,
    arrivals: usize,
}

impl SteadyState {
    /// Fresh state for `config` (uses its population size, bounds, σ vector
    /// and annealing factor; `generations` only bounds the campaign budget).
    pub fn new(config: &Nsga2Config) -> Self {
        config.validate();
        SteadyState {
            capacity: config.pop_size,
            anneal_factor: config.anneal_factor,
            bounds: config.bounds.clone(),
            std: config.std.clone(),
            population: Vec::with_capacity(config.pop_size + 1),
            arrivals: 0,
        }
    }

    /// Rebuild mid-campaign state from a journal snapshot: the population,
    /// annealed σ vector, and arrival count exactly as they stood when the
    /// snapshot was taken. The restored state continues the σ schedule and
    /// epoch accounting as if it had absorbed every arrival itself.
    pub fn restore(
        config: &Nsga2Config,
        std: Vec<f64>,
        population: Vec<Individual>,
        arrivals: usize,
    ) -> Self {
        config.validate();
        SteadyState {
            capacity: config.pop_size,
            anneal_factor: config.anneal_factor,
            bounds: config.bounds.clone(),
            std,
            population,
            arrivals,
        }
    }

    /// Current population (at most `pop_size` members, ranked and crowded).
    pub fn population(&self) -> &[Individual] {
        &self.population
    }

    /// Current mutation standard deviations (annealed per epoch).
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Evaluated individuals absorbed so far.
    pub fn arrivals(&self) -> usize {
        self.arrivals
    }

    /// Completed epochs: one per `pop_size` arrivals.
    pub fn epoch(&self) -> usize {
        self.arrivals / self.capacity
    }

    /// Absorb one evaluated individual, in *arrival order*: insert, rank
    /// and crowd the pool, truncate back to capacity, and anneal σ when
    /// this arrival closes an epoch. Returns the arrival index consumed.
    ///
    /// The caller journals that index next to the evaluation record; replay
    /// feeds the same individuals in the same order and therefore rebuilds
    /// byte-identical population state.
    pub fn tell(&mut self, individual: Individual) -> usize {
        assert!(individual.fitness.is_some(), "tell() requires an evaluated individual");
        self.population.push(individual);
        assign_rank_and_crowding(&mut self.population);
        if self.population.len() > self.capacity {
            let pool = std::mem::take(&mut self.population);
            self.population = truncation_selection(pool, self.capacity);
        }
        let arrival = self.arrivals;
        self.arrivals += 1;
        if self.arrivals.is_multiple_of(self.capacity) {
            anneal_std(&mut self.std, self.anneal_factor);
        }
        arrival
    }

    /// Breed one unevaluated child from the current population: random
    /// parent selection → clone → bounded isotropic Gaussian mutation with
    /// the current (annealed) σ. The caller keys `rng` off
    /// `(run_seed, arrival_seq)` so the draw depends only on the journaled
    /// arrival order.
    pub fn breed<R: Rng + ?Sized>(&self, rng: &mut R) -> Individual {
        let parent = random_selection(&self.population, rng);
        let mut child = parent.clone_as_offspring();
        mutate_gaussian(&mut child.genome, &self.std, &self.bounds, rng);
        child
    }
}

/// Reorder buffer between the racy physical completion order and the
/// deterministic arrival order.
///
/// Completions are offered with their (precomputed) arrival index in any
/// order; [`ArrivalWindow::offer`] releases the contiguous ready prefix —
/// exactly the individuals whose turn has come — in arrival order. Feeding
/// every permutation of the same completions through this buffer yields the
/// same release sequence, which is the property the steady-state proptest
/// pins down.
#[derive(Default)]
pub struct ArrivalWindow {
    next: usize,
    buffered: BTreeMap<usize, Individual>,
}

impl ArrivalWindow {
    /// An empty buffer expecting arrival index 0 first.
    pub fn new() -> Self {
        ArrivalWindow::default()
    }

    /// An empty buffer expecting `next` first (resume mid-campaign).
    pub fn starting_at(next: usize) -> Self {
        ArrivalWindow { next, buffered: BTreeMap::new() }
    }

    /// The arrival index the next release is waiting on.
    pub fn next_arrival(&self) -> usize {
        self.next
    }

    /// Completions buffered out of order, not yet releasable.
    pub fn pending(&self) -> usize {
        self.buffered.len()
    }

    /// Offer a completion; returns every individual that is now ready, in
    /// arrival order. Panics on a duplicate or already-released index —
    /// both would mean the caller's arrival bookkeeping is corrupt.
    pub fn offer(&mut self, arrival: usize, individual: Individual) -> Vec<Individual> {
        assert!(arrival >= self.next, "arrival {arrival} already released (next {})", self.next);
        let clash = self.buffered.insert(arrival, individual);
        assert!(clash.is_none(), "duplicate arrival index {arrival}");
        let mut ready = Vec::new();
        while let Some(ind) = self.buffered.remove(&self.next) {
            ready.push(ind);
            self.next += 1;
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::individual::Fitness;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> Nsga2Config {
        Nsga2Config {
            pop_size: 4,
            generations: 3,
            init_ranges: vec![(0.0, 1.0); 2],
            bounds: vec![(0.0, 1.0); 2],
            std: vec![0.1; 2],
            anneal_factor: 0.85,
        }
    }

    fn evaluated(e: f64, f: f64) -> Individual {
        let mut ind = Individual::new(vec![e, f]);
        ind.fitness = Some(Fitness::new(vec![e, f]));
        ind
    }

    #[test]
    fn population_never_exceeds_capacity_and_keeps_best_rank() {
        let mut state = SteadyState::new(&config());
        for i in 0..10 {
            let v = i as f64 / 10.0;
            let arrival = state.tell(evaluated(v, 1.0 - v));
            assert_eq!(arrival, i);
            assert!(state.population().len() <= 4);
        }
        assert_eq!(state.arrivals(), 10);
        // This trade-off front is mutually non-dominating: survivors all rank 0.
        assert!(state.population().iter().all(|i| i.rank == 0));
    }

    #[test]
    fn sigma_anneals_once_per_epoch() {
        let mut state = SteadyState::new(&config());
        assert!((state.std()[0] - 0.1).abs() < 1e-12);
        for i in 0..8 {
            state.tell(evaluated(0.1 + i as f64 * 0.01, 0.5));
        }
        assert_eq!(state.epoch(), 2);
        assert!((state.std()[0] - 0.1 * 0.85 * 0.85).abs() < 1e-12);
    }

    #[test]
    fn breed_respects_bounds_and_is_seed_deterministic() {
        let mut state = SteadyState::new(&config());
        state.tell(evaluated(0.5, 0.5));
        let child_a = state.breed(&mut StdRng::seed_from_u64(9));
        let child_b = state.breed(&mut StdRng::seed_from_u64(9));
        assert_eq!(child_a.genome, child_b.genome);
        assert!(child_a.fitness.is_none());
        assert!(child_a.genome.iter().all(|g| (0.0..=1.0).contains(g)));
    }

    #[test]
    fn arrival_window_releases_in_arrival_order() {
        let mut window = ArrivalWindow::new();
        assert!(window.offer(2, evaluated(0.2, 0.2)).is_empty());
        assert!(window.offer(1, evaluated(0.1, 0.1)).is_empty());
        assert_eq!(window.pending(), 2);
        let ready = window.offer(0, evaluated(0.0, 0.0));
        assert_eq!(ready.len(), 3);
        let genomes: Vec<f64> = ready.iter().map(|i| i.genome[0]).collect();
        assert_eq!(genomes, vec![0.0, 0.1, 0.2]);
        assert_eq!(window.next_arrival(), 3);
        assert_eq!(window.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn arrival_window_rejects_released_index() {
        let mut window = ArrivalWindow::new();
        let _ = window.offer(0, evaluated(0.0, 0.0));
        let _ = window.offer(0, evaluated(0.0, 0.0));
    }
}
