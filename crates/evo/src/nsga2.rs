//! A generational NSGA-II driver composing the pipeline operators of
//! [`crate::ops`] exactly in the order of the paper's Listing 1, with the
//! paper's per-generation mutation-σ annealing (×0.85 by default).

use rand::Rng;

use crate::individual::{Fitness, Individual};
use crate::mo::assign_rank_and_crowding;
use crate::ops::{anneal_std, create_offspring, random_population, truncation_selection};

/// Outcome of evaluating one genome.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// The (multi-objective) fitness; use [`Fitness::penalty`] on failure.
    pub fitness: Fitness,
    /// Optional cost metadata (the paper tracks training runtime minutes).
    pub minutes: Option<f64>,
}

impl EvalResult {
    /// A plain fitness with no cost metadata.
    pub fn fitness(fitness: Fitness) -> Self {
        EvalResult { fitness, minutes: None }
    }
}

/// Anything that can evaluate a batch of genomes — typically fanning the
/// batch out to parallel workers, as the paper's `eval_pool` does via Dask.
pub trait BatchEvaluator {
    /// Evaluate all genomes; must return exactly one result per genome.
    fn evaluate(&mut self, genomes: &[Vec<f64>]) -> Vec<EvalResult>;
}

impl<F> BatchEvaluator for F
where
    F: FnMut(&[Vec<f64>]) -> Vec<EvalResult>,
{
    fn evaluate(&mut self, genomes: &[Vec<f64>]) -> Vec<EvalResult> {
        self(genomes)
    }
}

/// Static configuration of an NSGA-II run.
#[derive(Clone, Debug)]
pub struct Nsga2Config {
    /// Parent (and offspring) population size.
    pub pop_size: usize,
    /// Number of offspring generations (the paper runs 7 generations,
    /// i.e. generation 0 = random init plus 6 EA steps; `generations` here
    /// counts the EA steps).
    pub generations: usize,
    /// Per-gene uniform initialisation ranges (Table 1, column 2).
    pub init_ranges: Vec<(f64, f64)>,
    /// Per-gene hard bounds applied after mutation.
    pub bounds: Vec<(f64, f64)>,
    /// Initial per-gene Gaussian mutation standard deviations (Table 1,
    /// column 3).
    pub std: Vec<f64>,
    /// Multiplicative σ annealing factor applied after each generation.
    pub anneal_factor: f64,
}

impl Nsga2Config {
    /// Sanity-check the configuration, panicking on inconsistency.
    pub fn validate(&self) {
        assert!(self.pop_size > 0, "population must be non-empty");
        let n = self.init_ranges.len();
        assert_eq!(self.bounds.len(), n, "bounds/init length mismatch");
        assert_eq!(self.std.len(), n, "std/init length mismatch");
        assert!(self.anneal_factor > 0.0 && self.anneal_factor <= 1.0);
        for &(lo, hi) in self.init_ranges.iter().chain(self.bounds.iter()) {
            assert!(lo < hi, "degenerate range ({lo}, {hi})");
        }
    }
}

/// One generation's population snapshot.
#[derive(Clone, Debug)]
pub struct GenerationRecord {
    /// Generation number; 0 is the random initial population.
    pub generation: usize,
    /// The surviving population after selection (or the evaluated initial
    /// population for generation 0).
    pub population: Vec<Individual>,
    /// Number of failed (penalty-fitness) evaluations among the individuals
    /// evaluated *during* this generation.
    pub failures: usize,
}

/// Full run output: per-generation records, seeds intact for reproduction.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// One record per generation, `generations + 1` in total.
    pub history: Vec<GenerationRecord>,
    /// Total number of fitness evaluations performed.
    pub evaluations: usize,
}

impl RunResult {
    /// The final generation's population.
    pub fn final_population(&self) -> &[Individual] {
        &self.history.last().expect("empty run").population
    }
}

fn evaluate_into(
    evaluator: &mut dyn BatchEvaluator,
    individuals: &mut [Individual],
) -> usize {
    let genomes: Vec<Vec<f64>> = individuals.iter().map(|i| i.genome.clone()).collect();
    let results = evaluator.evaluate(&genomes);
    assert_eq!(results.len(), individuals.len(), "evaluator result count mismatch");
    let mut failures = 0;
    for (ind, res) in individuals.iter_mut().zip(results) {
        if res.fitness.is_penalty() {
            failures += 1;
        }
        ind.fitness = Some(res.fitness);
        ind.eval_minutes = res.minutes;
    }
    failures
}

/// Mid-run NSGA-II driver state: everything that must survive between
/// generations for the run to continue — and everything a checkpoint must
/// capture (together with the RNG stream state, which the caller owns) for
/// a resumed run to be bit-identical to an uninterrupted one.
///
/// [`run_nsga2`] composes [`Nsga2State::start`] and [`Nsga2State::step`];
/// callers that checkpoint between generations (the experiment journal in
/// `dphpo-core`) drive the same two methods directly and rebuild the state
/// with [`Nsga2State::restore`] after a crash.
#[derive(Clone, Debug)]
pub struct Nsga2State {
    /// Last completed generation (0 right after [`Nsga2State::start`]).
    pub generation: usize,
    /// Current parent population: evaluated, rank/crowding assigned.
    pub parents: Vec<Individual>,
    /// Current per-gene mutation σ (already annealed for the *next* step).
    pub std: Vec<f64>,
    /// Total fitness evaluations performed so far.
    pub evaluations: usize,
    /// One record per completed generation.
    pub history: Vec<GenerationRecord>,
}

impl Nsga2State {
    /// Generation 0: draw and evaluate the random initial population.
    pub fn start<R: Rng + ?Sized>(
        config: &Nsga2Config,
        evaluator: &mut dyn BatchEvaluator,
        rng: &mut R,
    ) -> Self {
        config.validate();
        let mut parents = random_population(config.pop_size, &config.init_ranges, rng);
        let failures = evaluate_into(evaluator, &mut parents);
        let evaluations = parents.len();
        assign_rank_and_crowding(&mut parents);
        let mut history = Vec::with_capacity(config.generations + 1);
        history.push(GenerationRecord { generation: 0, population: parents.clone(), failures });
        Nsga2State { generation: 0, parents, std: config.std.clone(), evaluations, history }
    }

    /// One EA generation: select → clone → mutate → evaluate → merged rank
    /// sort → crowding → truncation, then anneal σ (paper §2.2.3).
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        config: &Nsga2Config,
        evaluator: &mut dyn BatchEvaluator,
        rng: &mut R,
    ) {
        let generation = self.generation + 1;
        let mut offspring =
            create_offspring(&self.parents, config.pop_size, &self.std, &config.bounds, rng);
        let failures = evaluate_into(evaluator, &mut offspring);
        self.evaluations += offspring.len();

        // LEAP's rank_ordinal_sort(parents=parents) merges the parent
        // population into the sorted pool before truncation.
        let mut pool = std::mem::take(&mut self.parents);
        pool.extend(offspring);
        assign_rank_and_crowding(&mut pool);
        self.parents = truncation_selection(pool, config.pop_size);

        // Anneal σ after the offspring pipeline returns (paper §2.2.3).
        anneal_std(&mut self.std, config.anneal_factor);

        self.history.push(GenerationRecord {
            generation,
            population: self.parents.clone(),
            failures,
        });
        self.generation = generation;
    }

    /// True once `config.generations` EA steps have completed.
    pub fn is_complete(&self, config: &Nsga2Config) -> bool {
        self.generation >= config.generations
    }

    /// Rebuild mid-run state from checkpointed history and σ. The last
    /// history record's population becomes the current parents; the caller
    /// is responsible for restoring the RNG stream alongside.
    ///
    /// Panics on an empty history (there is nothing to resume).
    pub fn restore(history: Vec<GenerationRecord>, std: Vec<f64>, evaluations: usize) -> Self {
        let last = history.last().expect("cannot restore from an empty history");
        Nsga2State {
            generation: last.generation,
            parents: last.population.clone(),
            std,
            evaluations,
            history,
        }
    }

    /// Finish the run, consuming the state.
    pub fn into_result(self) -> RunResult {
        RunResult { history: self.history, evaluations: self.evaluations }
    }
}

/// Run NSGA-II: random init → (select → clone → mutate → evaluate → merged
/// rank sort → crowding → truncation) × generations, annealing σ each step.
pub fn run_nsga2<R: Rng + ?Sized>(
    config: &Nsga2Config,
    evaluator: &mut dyn BatchEvaluator,
    rng: &mut R,
) -> RunResult {
    let mut state = Nsga2State::start(config, evaluator, rng);
    while !state.is_complete(config) {
        state.step(config, evaluator, rng);
    }
    state.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mo::{hypervolume_2d, pareto_front};
    use crate::problems::zdt1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn zdt1_evaluator() -> impl FnMut(&[Vec<f64>]) -> Vec<EvalResult> {
        |genomes: &[Vec<f64>]| {
            genomes
                .iter()
                .map(|g| EvalResult::fitness(Fitness::new(zdt1().evaluate(g))))
                .collect()
        }
    }

    fn zdt1_config(pop: usize, gens: usize) -> Nsga2Config {
        let p = zdt1();
        Nsga2Config {
            pop_size: pop,
            generations: gens,
            init_ranges: p.bounds(),
            bounds: p.bounds(),
            std: vec![0.1; p.dims()],
            anneal_factor: 0.95,
        }
    }

    #[test]
    fn runs_produce_expected_history_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let config = zdt1_config(16, 5);
        let result = run_nsga2(&config, &mut zdt1_evaluator(), &mut rng);
        assert_eq!(result.history.len(), 6);
        assert_eq!(result.evaluations, 16 * 6);
        for (g, rec) in result.history.iter().enumerate() {
            assert_eq!(rec.generation, g);
            assert_eq!(rec.population.len(), 16);
            assert!(rec.population.iter().all(|i| i.fitness.is_some()));
        }
    }

    #[test]
    fn hypervolume_improves_over_generations_on_zdt1() {
        let mut rng = StdRng::seed_from_u64(42);
        let config = zdt1_config(32, 25);
        let result = run_nsga2(&config, &mut zdt1_evaluator(), &mut rng);
        let hv = |pop: &[Individual]| {
            let pts: Vec<(f64, f64)> = pop
                .iter()
                .map(|i| (i.fitness().get(0), i.fitness().get(1)))
                .collect();
            hypervolume_2d(&pts, (11.0, 11.0))
        };
        let first = hv(&result.history[0].population);
        let last = hv(result.final_population());
        assert!(
            last > first + 1.0,
            "hypervolume did not improve: {first} -> {last}"
        );
    }

    #[test]
    fn selection_is_elitist() {
        // The best front's hypervolume never decreases between generations.
        let mut rng = StdRng::seed_from_u64(3);
        let config = zdt1_config(24, 12);
        let result = run_nsga2(&config, &mut zdt1_evaluator(), &mut rng);
        let mut prev = f64::MIN;
        for rec in &result.history {
            let fits: Vec<&Fitness> = rec.population.iter().map(|i| i.fitness()).collect();
            let front = pareto_front(&fits);
            let pts: Vec<(f64, f64)> = front
                .iter()
                .map(|&i| (fits[i].get(0), fits[i].get(1)))
                .collect();
            let hv = hypervolume_2d(&pts, (11.0, 11.0));
            assert!(
                hv >= prev - 1e-9,
                "elitism violated: hv {hv} < previous {prev} at gen {}",
                rec.generation
            );
            prev = hv;
        }
    }

    #[test]
    fn failed_evaluations_are_culled_by_selection() {
        // An evaluator that fails everything with genome[0] > 0.5: after a
        // couple of generations the surviving population should be
        // penalty-free.
        let mut evaluator = |genomes: &[Vec<f64>]| {
            genomes
                .iter()
                .map(|g| {
                    if g[0] > 0.5 {
                        EvalResult::fitness(Fitness::penalty(2))
                    } else {
                        EvalResult::fitness(Fitness::new(vec![g[0], 1.0 - g[0]]))
                    }
                })
                .collect::<Vec<_>>()
        };
        let config = Nsga2Config {
            pop_size: 20,
            generations: 4,
            init_ranges: vec![(0.0, 1.0)],
            bounds: vec![(0.0, 1.0)],
            std: vec![0.05],
            anneal_factor: 0.85,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let result = run_nsga2(&config, &mut evaluator, &mut rng);
        let final_failures = result
            .final_population()
            .iter()
            .filter(|i| i.is_failed())
            .count();
        assert_eq!(final_failures, 0, "penalty individuals survived selection");
        // And at least one failure must have occurred early on for the test
        // to be meaningful.
        assert!(result.history[0].failures > 0);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let config = zdt1_config(10, 3);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = run_nsga2(&config, &mut zdt1_evaluator(), &mut rng);
            r.final_population()
                .iter()
                .map(|i| i.fitness().values().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn restored_state_continues_bit_identically() {
        // Drive three generations, snapshot (history, std, evaluations, RNG
        // state), drop the driver, restore, and finish — the final
        // population must equal the uninterrupted run's exactly.
        let config = zdt1_config(12, 6);
        let finish = |mut state: Nsga2State, mut rng: StdRng| {
            let mut evaluator = zdt1_evaluator();
            while !state.is_complete(&config) {
                state.step(&config, &mut evaluator, &mut rng);
            }
            state
                .into_result()
                .final_population()
                .iter()
                .map(|i| i.fitness().values().to_vec())
                .collect::<Vec<_>>()
        };

        let mut rng = StdRng::seed_from_u64(77);
        let mut evaluator = zdt1_evaluator();
        let mut state = Nsga2State::start(&config, &mut evaluator, &mut rng);
        for _ in 0..3 {
            state.step(&config, &mut evaluator, &mut rng);
        }
        let checkpoint =
            (state.history.clone(), state.std.clone(), state.evaluations, rng.state());

        let uninterrupted = finish(state, rng);
        let restored = Nsga2State::restore(checkpoint.0, checkpoint.1, checkpoint.2);
        assert_eq!(restored.generation, 3);
        let resumed = finish(restored, StdRng::from_state(checkpoint.3));
        assert_eq!(uninterrupted, resumed);
    }

    #[test]
    #[should_panic(expected = "degenerate range")]
    fn config_validation_rejects_bad_ranges() {
        let mut config = zdt1_config(4, 1);
        config.bounds[0] = (1.0, 1.0);
        config.validate();
    }
}
