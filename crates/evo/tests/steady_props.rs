//! Property tests for the steady-state insertion machinery: the journaled
//! arrival order — not the racy physical completion order — fully
//! determines population and archive state.
//!
//! The driver in `dphpo-core` buffers completions in an [`ArrivalWindow`]
//! and only ever feeds [`SteadyState::tell`] the released (arrival-ordered)
//! prefix. These tests feed the same fixed result set through every
//! window-local permutation of completion order a scheduler could produce
//! and assert the downstream state is bit-identical to a sequential feed.

use dphpo_evo::steady::{ArrivalWindow, SteadyState};
use dphpo_evo::{Fitness, Individual, Nsga2Config, ParetoArchive};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config(pop: usize) -> Nsga2Config {
    Nsga2Config {
        pop_size: pop,
        generations: 3,
        init_ranges: vec![(0.0, 1.0); 2],
        bounds: vec![(0.0, 1.0); 2],
        std: vec![0.1; 2],
        anneal_factor: 0.85,
    }
}

fn evaluated(objectives: (f64, f64)) -> Individual {
    let mut ind = Individual::new(vec![objectives.0, objectives.1]);
    ind.fitness = Some(Fitness::new(vec![objectives.0, objectives.1]));
    ind
}

/// `{:?}` on `f64` is shortest-round-trip: equal strings mean bit-equal
/// population and archive state.
fn canon(state: &SteadyState, archive: &ParetoArchive) -> String {
    let mut out = String::new();
    for ind in state.population() {
        out.push_str(&format!(
            "pop genome={:?} fitness={:?} rank={} distance={:?}\n",
            ind.genome,
            ind.fitness.as_ref().map(|f| f.values().to_vec()),
            ind.rank,
            ind.distance,
        ));
    }
    out.push_str(&format!("std={:?} arrivals={}\n", state.std(), state.arrivals()));
    for ind in archive.members() {
        out.push_str(&format!(
            "arc genome={:?} fitness={:?}\n",
            ind.genome,
            ind.fitness.as_ref().map(|f| f.values().to_vec()),
        ));
    }
    out
}

/// Feed `results` through windows of `window` completions; within each
/// window the physical completion order is `shuffle_seed`-permuted, the
/// arrival indices are the true ones, and only the [`ArrivalWindow`]'s
/// released prefix reaches the population/archive. Returns the canonical
/// downstream state plus the released arrival sequence.
fn run_permuted(
    results: &[(f64, f64)],
    pop: usize,
    window: usize,
    shuffle_seed: usize,
) -> (String, Vec<usize>) {
    let mut state = SteadyState::new(&config(pop));
    let mut archive = ParetoArchive::new();
    let mut buffer = ArrivalWindow::new();
    let mut released_order = Vec::new();
    let mut rng = StdRng::seed_from_u64(shuffle_seed as u64);
    for (chunk_idx, chunk) in results.chunks(window).enumerate() {
        // Fisher–Yates over this window's completion order: the race the
        // arrival buffer must absorb.
        let mut order: Vec<usize> = (0..chunk.len()).collect();
        for i in (1..order.len()).rev() {
            use rand::Rng as _;
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        for &k in &order {
            let arrival = chunk_idx * window + k;
            for ind in buffer.offer(arrival, evaluated(chunk[k])) {
                released_order.push(state.tell(ind.clone()));
                archive.offer_counted(&ind);
            }
        }
    }
    (canon(&state, &archive), released_order)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any window-local permutation of completion order yields the same
    /// population bytes, archive bytes, σ schedule, and release sequence as
    /// a strictly sequential feed — the arrival order alone determines
    /// steady-state campaign state.
    #[test]
    fn arrival_order_fully_determines_population_and_archive(
        results in prop::collection::vec((0.01..0.99f64, 0.01..0.99f64), 6..24),
        pop in 3usize..8,
        window in 1usize..7,
        shuffle_seed in 0usize..1_000_000,
    ) {
        let (reference, sequential) = run_permuted(&results, pop, results.len(), 0);
        prop_assert_eq!(&sequential, &(0..results.len()).collect::<Vec<_>>());
        let (permuted, released) = run_permuted(&results, pop, window, shuffle_seed);
        prop_assert_eq!(&released, &(0..results.len()).collect::<Vec<_>>());
        prop_assert_eq!(permuted, reference);
    }

    /// Breeding after an arrival-ordered feed is a pure function of the
    /// arrival count: the same keyed RNG produces the same child no matter
    /// which physical order the completions landed in.
    #[test]
    fn breeding_is_invariant_under_completion_reordering(
        results in prop::collection::vec((0.01..0.99f64, 0.01..0.99f64), 4..12),
        window in 1usize..5,
        shuffle_seed in 0usize..1_000_000,
        breed_seed in 0usize..1_000_000,
    ) {
        let pop = 4;
        let feed = |w: usize, s: usize| {
            let mut state = SteadyState::new(&config(pop));
            let mut buffer = ArrivalWindow::new();
            let mut rng = StdRng::seed_from_u64(s as u64);
            for (chunk_idx, chunk) in results.chunks(w).enumerate() {
                let mut order: Vec<usize> = (0..chunk.len()).collect();
                for i in (1..order.len()).rev() {
                    use rand::Rng as _;
                    let j = rng.random_range(0..=i);
                    order.swap(i, j);
                }
                for &k in &order {
                    for ind in buffer.offer(chunk_idx * w + k, evaluated(chunk[k])) {
                        state.tell(ind);
                    }
                }
            }
            state
        };
        let a = feed(results.len(), 0);
        let b = feed(window, shuffle_seed);
        let child_a = a.breed(&mut StdRng::seed_from_u64(breed_seed as u64));
        let child_b = b.breed(&mut StdRng::seed_from_u64(breed_seed as u64));
        prop_assert_eq!(child_a.genome, child_b.genome);
    }
}
