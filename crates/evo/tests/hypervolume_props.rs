//! Property tests for the exact hypervolume sweep: dominance invariance,
//! monotonicity under nondominated insertion, and agreement with a
//! brute-force grid estimate on random fronts and the analytic ZDT
//! reference fronts.

use dphpo_evo::{hypervolume, zdt1_reference_front, zdt2_reference_front};
use proptest::prelude::*;

/// Brute-force Monte-Carlo-free estimate: a G×G(×G) grid over the
/// reference box, counting cells whose centre is weakly dominated by some
/// front point. Error is bounded by the staircase boundary, roughly
/// `(dims × (n_points + 1) / G) × box volume`.
fn grid_estimate(front: &[Vec<f64>], reference: &[f64], g: usize) -> f64 {
    let dims = reference.len();
    let cell = |axis: usize, k: usize| (k as f64 + 0.5) * reference[axis] / g as f64;
    let dominated = |point: &[f64]| {
        front.iter().any(|p| p.iter().zip(point).all(|(a, b)| a <= b))
    };
    let mut hits = 0usize;
    let mut total = 0usize;
    match dims {
        2 => {
            for i in 0..g {
                for j in 0..g {
                    total += 1;
                    if dominated(&[cell(0, i), cell(1, j)]) {
                        hits += 1;
                    }
                }
            }
        }
        3 => {
            for i in 0..g {
                for j in 0..g {
                    for k in 0..g {
                        total += 1;
                        if dominated(&[cell(0, i), cell(1, j), cell(2, k)]) {
                            hits += 1;
                        }
                    }
                }
            }
        }
        _ => unreachable!(),
    }
    let volume: f64 = reference.iter().product();
    hits as f64 / total as f64 * volume
}

fn grid_tolerance(n_points: usize, reference: &[f64], g: usize) -> f64 {
    let volume: f64 = reference.iter().product();
    (reference.len() * (n_points + 1)) as f64 / g as f64 * volume
}

/// A strategy for random 2-D fronts inside the unit reference box.
fn points_2d(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((0.0..0.99f64, 0.0..0.99f64), 1..max)
        .prop_map(|ps| ps.into_iter().map(|(a, b)| vec![a, b]).collect())
}

fn points_3d(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((0.0..0.99f64, 0.0..0.99f64, 0.0..0.99f64), 1..max)
        .prop_map(|ps| ps.into_iter().map(|(a, b, c)| vec![a, b, c]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding a point dominated by an existing member changes nothing:
    /// its dominated box is a subset of the dominator's.
    #[test]
    fn dominated_point_never_changes_hypervolume(
        front in points_2d(8),
        pick in 0usize..8,
        eps in (0.001..0.2f64, 0.001..0.2f64),
    ) {
        let reference = [1.0, 1.0];
        let base = hypervolume(&front, &reference);
        let host = &front[pick % front.len()];
        let dominated = vec![
            (host[0] + eps.0).min(0.999),
            (host[1] + eps.1).min(0.999),
        ];
        let mut extended = front.clone();
        extended.push(dominated);
        let after = hypervolume(&extended, &reference);
        prop_assert!((after - base).abs() < 1e-12, "hv moved {base} -> {after}");
    }

    /// Adding any point inside the reference box never decreases the
    /// hypervolume, and a point that is not weakly dominated by the front
    /// strictly increases it.
    #[test]
    fn nondominated_point_never_decreases_hypervolume(
        front in points_2d(8),
        candidate in (0.0..0.99f64, 0.0..0.99f64),
    ) {
        let reference = [1.0, 1.0];
        let base = hypervolume(&front, &reference);
        let cand = vec![candidate.0, candidate.1];
        let weakly_dominated =
            front.iter().any(|p| p[0] <= cand[0] && p[1] <= cand[1]);
        let mut extended = front.clone();
        extended.push(cand);
        let after = hypervolume(&extended, &reference);
        prop_assert!(after >= base - 1e-12, "hv dropped {base} -> {after}");
        if !weakly_dominated {
            prop_assert!(after > base, "nondominated insert did not grow hv");
        }
    }

    /// The exact 2-D sweep agrees with a brute-force grid estimate.
    #[test]
    fn sweep_agrees_with_grid_estimate_2d(front in points_2d(8)) {
        let reference = [1.0, 1.0];
        let exact = hypervolume(&front, &reference);
        let grid = grid_estimate(&front, &reference, 128);
        let tol = grid_tolerance(front.len(), &reference, 128);
        prop_assert!((exact - grid).abs() <= tol, "exact {exact} grid {grid} tol {tol}");
    }

    /// The 3-D slab sweep agrees with a brute-force grid estimate.
    #[test]
    fn sweep_agrees_with_grid_estimate_3d(front in points_3d(6)) {
        let reference = [1.0, 1.0, 1.0];
        let exact = hypervolume(&front, &reference);
        let grid = grid_estimate(&front, &reference, 48);
        let tol = grid_tolerance(front.len(), &reference, 48);
        prop_assert!((exact - grid).abs() <= tol, "exact {exact} grid {grid} tol {tol}");
    }
}

#[test]
fn zdt_reference_fronts_match_grid_estimate() {
    let reference = [1.1, 1.1];
    for front in [zdt1_reference_front(40), zdt2_reference_front(40)] {
        let exact = hypervolume(&front, &reference);
        let grid = grid_estimate(&front, &reference, 256);
        let tol = grid_tolerance(front.len(), &reference, 256);
        assert!(
            (exact - grid).abs() <= tol,
            "exact {exact} grid {grid} tol {tol}"
        );
        // The analytic fronts dominate a substantial share of the box.
        assert!(exact > 0.4, "implausibly small ZDT hypervolume {exact}");
    }
}

/// The ZDT1 front strictly dominates the ZDT2 front pointwise
/// (1 − √x ≤ 1 − x² on [0, 1]), so its hypervolume must be larger.
#[test]
fn zdt1_front_dominates_zdt2_front_in_hypervolume() {
    let reference = [1.1, 1.1];
    let hv1 = hypervolume(&zdt1_reference_front(60), &reference);
    let hv2 = hypervolume(&zdt2_reference_front(60), &reference);
    assert!(hv1 > hv2, "zdt1 {hv1} should exceed zdt2 {hv2}");
}
