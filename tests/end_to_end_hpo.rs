//! End-to-end integration: the full pipeline — synthetic FPMD dataset →
//! NSGA-II over the simulated Summit pool → analysis — at smoke scale,
//! asserting the structural invariants every figure and table relies on.

use dphpo::core::analysis::analyze;
use dphpo::core::experiment::{run_experiment, ExperimentConfig};
use dphpo::evo::Fitness;

fn smoke_result() -> dphpo::core::ExperimentResult {
    run_experiment(&ExperimentConfig::smoke())
}

#[test]
fn experiment_structure_matches_config() {
    let config = ExperimentConfig::smoke();
    let result = smoke_result();
    assert_eq!(result.runs.len(), config.n_runs);
    for run in &result.runs {
        assert_eq!(run.history.len(), config.generations + 1);
        assert_eq!(run.evaluations, config.pop_size * (config.generations + 1));
        for record in &run.history {
            assert_eq!(record.population.len(), config.pop_size);
            for ind in &record.population {
                assert_eq!(ind.genome.len(), 7, "seven-gene representation");
                let fitness = ind.fitness();
                assert_eq!(fitness.len(), 2, "two-objective fitness");
            }
        }
    }
}

#[test]
fn genomes_respect_table1_bounds_in_every_generation() {
    let bounds = dphpo::core::DeepMDRepresentation::bounds();
    let result = smoke_result();
    for run in &result.runs {
        for record in &run.history {
            for ind in &record.population {
                for (gene, &(lo, hi)) in ind.genome.iter().zip(bounds.iter()) {
                    assert!(
                        (lo..=hi).contains(gene),
                        "gene {gene} outside hard bounds ({lo}, {hi})"
                    );
                }
            }
        }
    }
}

#[test]
fn surviving_fitnesses_are_physical() {
    let result = smoke_result();
    for run in &result.runs {
        for ind in run.final_population() {
            if ind.is_failed() {
                continue;
            }
            let fitness = ind.fitness();
            // Energy RMSE (eV/atom) and force RMSE (eV/Å) must be positive
            // and bounded by obviously-unphysical limits.
            assert!(fitness.get(0) > 0.0 && fitness.get(0) < 10.0);
            assert!(fitness.get(1) > 0.0 && fitness.get(1) < 100.0);
            let minutes = ind.eval_minutes.expect("runtime recorded");
            assert!(minutes > 0.0 && minutes <= 120.0, "runtime {minutes}");
        }
    }
}

#[test]
fn analysis_annotations_are_consistent() {
    let result = smoke_result();
    let analysis = analyze(&result);
    for (i, s) in analysis.solutions.iter().enumerate() {
        assert_eq!(s.on_frontier, analysis.frontier.contains(&i));
        assert_eq!(s.chem_accurate, analysis.accurate.contains(&i));
        if s.chem_accurate {
            assert!(s.force_loss < dphpo::core::CHEM_ACC_FORCE);
            assert!(s.energy_loss < dphpo::core::CHEM_ACC_ENERGY);
            assert!(!s.failed);
        }
    }
    // No frontier member may be dominated by ANY non-failed solution.
    for &i in &analysis.frontier {
        let fi = Fitness::new(vec![
            analysis.solutions[i].energy_loss,
            analysis.solutions[i].force_loss,
        ]);
        for s in analysis.solutions.iter().filter(|s| !s.failed) {
            let fs = Fitness::new(vec![s.energy_loss, s.force_loss]);
            assert!(!fs.dominates(&fi), "frontier member dominated");
        }
    }
}

#[test]
fn selection_improves_the_frontier_hypervolume() {
    // Elitist NSGA-II: the final generation's Pareto frontier must be at
    // least as good as generation 0's (measured by 2-D hypervolume against
    // a far reference point, penalties excluded).
    use dphpo::evo::{hypervolume_2d, pareto_front};
    let result = smoke_result();
    for run in &result.runs {
        let hv = |gen: usize| {
            let pop = &run.history[gen].population;
            let fits: Vec<&Fitness> =
                pop.iter().filter(|i| !i.is_failed()).map(|i| i.fitness()).collect();
            if fits.is_empty() {
                return 0.0;
            }
            let front = pareto_front(&fits);
            let pts: Vec<(f64, f64)> =
                front.iter().map(|&i| (fits[i].get(0), fits[i].get(1))).collect();
            hypervolume_2d(&pts, (10.0, 10.0))
        };
        let first = hv(0);
        let last = hv(run.history.len() - 1);
        assert!(
            last >= first - 1e-9,
            "frontier regressed: {first} -> {last}"
        );
    }
}
