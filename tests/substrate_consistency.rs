//! Cross-substrate physics consistency: the learned potential really
//! learns the reference potential, hyperparameters act through the
//! mechanisms the paper describes, and the fast cached training path is
//! exactly equivalent to the position-differentiated graph.

use dphpo::dnnp::{train, Activation, LrScaling, TrainConfig};
use dphpo::md::generate::{generate_dataset, GenConfig};
use dphpo::md::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(seed: u64) -> (Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = GenConfig {
        n_atoms: 20,
        box_len: 14.0,
        n_frames: 30,
        equil_steps: 200,
        sample_every: 5,
        ..GenConfig::tiny()
    };
    let mut ds = generate_dataset(&gen, &mut rng);
    ds.add_label_noise(0.0005, 0.03, &mut rng);
    ds.split(0.25, &mut rng)
}

fn base_config() -> TrainConfig {
    TrainConfig {
        start_lr: 0.008,
        stop_lr: 1e-4,
        rcut: 6.5,
        rcut_smth: 2.2,
        scale_by_worker: LrScaling::None,
        num_steps: 300,
        disp_freq: 300,
        val_max_frames: 3,
        ..TrainConfig::default()
    }
}

#[test]
fn training_learns_real_forces_not_noise() {
    // After training, predicted forces on held-out frames must correlate
    // strongly with the reference potential's forces.
    let (train_ds, val_ds) = dataset(11);
    let mut rng = StdRng::seed_from_u64(12);
    let report = train(&base_config(), &train_ds, &val_ds, &mut rng).unwrap();
    assert!(!report.diverged);

    let frame = &val_ds.frames[0];
    let (_, predicted) = report.model.predict(&frame.positions);
    let mut dot = 0.0;
    let mut norm_p = 0.0;
    let mut norm_r = 0.0;
    for (p, r) in predicted.iter().zip(frame.forces.iter()) {
        for k in 0..3 {
            dot += p[k] * r[k];
            norm_p += p[k] * p[k];
            norm_r += r[k] * r[k];
        }
    }
    let cosine = dot / (norm_p.sqrt() * norm_r.sqrt());
    // 300 dev-profile steps is a short budget; cos ≈ 0.7 already indicates
    // genuine force learning (random vectors in 60 dimensions would sit
    // near 0), and the release-mode experiments train 2,000 steps.
    assert!(
        cosine > 0.6,
        "predicted forces barely correlate with reference: cos={cosine:.3}"
    );
}

#[test]
fn larger_cutoff_reduces_force_error() {
    // The paper's central rcut finding, at unit-test scale: with identical
    // budgets, a longer cutoff sees more of the screened-Coulomb tail.
    let (train_ds, val_ds) = dataset(13);
    let force_loss = |rcut: f64| {
        let mut rng = StdRng::seed_from_u64(14);
        let config = TrainConfig { rcut, ..base_config() };
        let report = train(&config, &train_ds, &val_ds, &mut rng).unwrap();
        report.lcurve.final_losses().unwrap().1
    };
    let small = force_loss(4.0);
    let large = force_loss(7.0);
    assert!(
        large < small,
        "rcut 7.0 ({large:.4}) should beat rcut 4.0 ({small:.4})"
    );
}

#[test]
fn lr_scaling_multiplies_effective_rate() {
    // linear vs none at the same (tiny) start_lr: linear trains 6x faster
    // early on, so after very few steps its loss must be lower — the
    // mechanism behind the scale_by_worker gene.
    let (train_ds, val_ds) = dataset(15);
    let loss_with = |scaling: LrScaling| {
        let mut rng = StdRng::seed_from_u64(16);
        let config = TrainConfig {
            scale_by_worker: scaling,
            start_lr: 0.0008,
            num_steps: 120,
            disp_freq: 120,
            ..base_config()
        };
        let report = train(&config, &train_ds, &val_ds, &mut rng).unwrap();
        report.lcurve.final_losses().unwrap().1
    };
    let linear = loss_with(LrScaling::Linear);
    let none = loss_with(LrScaling::None);
    assert!(
        linear < none,
        "at a tiny base LR and short budget, linear scaling must lead: {linear:.4} vs {none:.4}"
    );
}

#[test]
fn sigmoid_descriptor_underperforms_tanh_at_fixed_budget() {
    // §3.2: the sigmoid descriptor activation never reaches chemical
    // accuracy. Mechanism: all-positive, easily saturated activations slow
    // descriptor learning at fixed step budgets.
    let (train_ds, val_ds) = dataset(17);
    let loss_with = |desc: Activation| {
        let mut rng = StdRng::seed_from_u64(18);
        let config = TrainConfig { desc_activation: desc, ..base_config() };
        let report = train(&config, &train_ds, &val_ds, &mut rng).unwrap();
        report.lcurve.final_losses().unwrap().1
    };
    let tanh = loss_with(Activation::Tanh);
    let sigmoid = loss_with(Activation::Sigmoid);
    assert!(
        tanh < sigmoid,
        "tanh descriptor should beat sigmoid: {tanh:.4} vs {sigmoid:.4}"
    );
}

#[test]
fn energy_and_force_objectives_are_coupled_but_distinct() {
    // The premise of the multiobjective treatment: energy and force errors
    // are linked through the shared model, yet not redundant — two
    // differently-seeded trainings can trade places on the two objectives.
    let (train_ds, val_ds) = dataset(19);
    let mut results = Vec::new();
    for seed in [20u64, 21, 22, 23] {
        let mut rng = StdRng::seed_from_u64(seed);
        let report = train(&base_config(), &train_ds, &val_ds, &mut rng).unwrap();
        results.push(report.lcurve.final_losses().unwrap());
    }
    // All runs produce finite, positive objective pairs.
    for (e, f) in &results {
        assert!(*e > 0.0 && *f > 0.0);
    }
    // And the orderings by energy and by force are not guaranteed equal —
    // verify the values at least differ across seeds (no degenerate ties).
    let energies: Vec<f64> = results.iter().map(|r| r.0).collect();
    assert!(energies.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
}

#[test]
fn md_dataset_forces_are_conservative_labels() {
    // Reference labels must be exactly -dU/dx of the reference potential;
    // this anchors the whole training target.
    let mut rng = StdRng::seed_from_u64(24);
    let gen = GenConfig { n_frames: 2, ..GenConfig::tiny() };
    let ds = generate_dataset(&gen, &mut rng);
    let potential = dphpo::md::MeltPotential::default();
    let frame = &ds.frames[0];
    let h = 1e-6;
    for atom in [0usize, 7] {
        for k in 0..3 {
            let mut plus = frame.positions.clone();
            let mut minus = frame.positions.clone();
            plus[atom][k] += h;
            minus[atom][k] -= h;
            let fd = -(potential.energy(&ds.cell, &ds.species, &plus)
                - potential.energy(&ds.cell, &ds.species, &minus))
                / (2.0 * h);
            assert!(
                (fd - frame.forces[atom][k]).abs() < 1e-5 * (1.0 + fd.abs()),
                "label force mismatch at atom {atom} component {k}"
            );
        }
    }
}
