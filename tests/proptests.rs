//! Property-based tests (proptest) over the core invariants of every
//! substrate: autograd correctness against finite differences, sorting
//! algorithm equivalence, dominance laws, decoder totality, hypervolume
//! monotonicity, JSON round-trips, and cell geometry.

use dphpo::autograd::{Tape, Tensor};
use dphpo::core::decode::{decode, floor_mod};
use dphpo::dnnp::{switching_scalar, Json};
use dphpo::evo::{
    crowding_distance, fast_nondominated_sort, hypervolume_2d, rank_ordinal_sort, Fitness,
};
use dphpo::md::Cell;
use proptest::prelude::*;

fn finite_fitness() -> impl Strategy<Value = Fitness> {
    prop::collection::vec(0.0f64..10.0, 2).prop_map(Fitness::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- evo ------------------------------------------------------------

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(f in finite_fitness(), g in finite_fitness()) {
        prop_assert!(!f.dominates(&f));
        prop_assert!(!(f.dominates(&g) && g.dominates(&f)));
    }

    #[test]
    fn sorting_algorithms_agree(
        values in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..60)
    ) {
        let fits: Vec<Fitness> = values.iter().map(|&(a, b)| Fitness::new(vec![a, b])).collect();
        let refs: Vec<&Fitness> = fits.iter().collect();
        let deb = fast_nondominated_sort(&refs).normalised();
        let rank = rank_ordinal_sort(&refs).normalised();
        prop_assert_eq!(deb, rank);
    }

    #[test]
    fn sorting_agrees_on_three_objectives(
        values in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..40)
    ) {
        let fits: Vec<Fitness> =
            values.iter().map(|&(a, b, c)| Fitness::new(vec![a, b, c])).collect();
        let refs: Vec<&Fitness> = fits.iter().collect();
        prop_assert_eq!(
            fast_nondominated_sort(&refs).normalised(),
            rank_ordinal_sort(&refs).normalised()
        );
    }

    #[test]
    fn fronts_partition_the_population(
        values in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..50)
    ) {
        let fits: Vec<Fitness> = values.iter().map(|&(a, b)| Fitness::new(vec![a, b])).collect();
        let refs: Vec<&Fitness> = fits.iter().collect();
        let fronts = rank_ordinal_sort(&refs);
        let mut seen = vec![false; fits.len()];
        for front in fronts.as_slice() {
            for &i in front {
                prop_assert!(!seen[i], "index {} in two fronts", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Front 0 is mutually non-dominating.
        let first = &fronts.as_slice()[0];
        for &a in first {
            for &b in first {
                prop_assert!(!fits[a].dominates(&fits[b]));
            }
        }
    }

    #[test]
    fn crowding_distances_are_nonnegative(
        values in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40)
    ) {
        let fits: Vec<Fitness> = values.iter().map(|&(a, b)| Fitness::new(vec![a, b])).collect();
        let refs: Vec<&Fitness> = fits.iter().collect();
        let front: Vec<usize> = (0..fits.len()).collect();
        for d in crowding_distance(&refs, &front) {
            prop_assert!(d >= 0.0);
        }
    }

    #[test]
    fn hypervolume_is_monotone_in_extra_points(
        values in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..30),
        extra in (0.0f64..1.0, 0.0f64..1.0)
    ) {
        let hv = hypervolume_2d(&values, (2.0, 2.0));
        let mut more = values.clone();
        more.push(extra);
        let hv2 = hypervolume_2d(&more, (2.0, 2.0));
        prop_assert!(hv2 >= hv - 1e-12);
        prop_assert!(hv >= 0.0);
    }

    // ---- autograd --------------------------------------------------------

    #[test]
    fn grad_of_quadratic_form_matches_closed_form(
        x in prop::collection::vec(-3.0f64..3.0, 1..8)
    ) {
        // y = Σ (3x² − 2x), dy/dx = 6x − 2.
        let tape = Tape::new();
        let v = tape.constant(Tensor::vector(&x));
        let y = tape.sum_all(tape.sub(tape.scale(tape.square(v), 3.0), tape.scale(v, 2.0)));
        let g = tape.grad(y, &[v])[0];
        let values = tape.value(g);
        for (xi, gi) in x.iter().zip(values.data()) {
            prop_assert!((gi - (6.0 * xi - 2.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_grad_is_linear_in_cotangent(
        a in prop::collection::vec(-2.0f64..2.0, 4),
        b in prop::collection::vec(-2.0f64..2.0, 4)
    ) {
        // d(sum(A·B))/dA = ones · Bᵀ: check against direct computation.
        let tape = Tape::new();
        let va = tape.constant(Tensor::matrix(2, 2, a.clone()));
        let vb = tape.constant(Tensor::matrix(2, 2, b.clone()));
        let y = tape.sum_all(tape.matmul(va, vb));
        let g = tape.grad(y, &[va])[0];
        let expected = Tensor::ones(dphpo::autograd::Shape::D2(2, 2))
            .matmul(&Tensor::matrix(2, 2, b).transpose());
        for (got, want) in tape.value(g).data().iter().zip(expected.data()) {
            prop_assert!((got - want).abs() < 1e-12);
        }
    }

    // ---- dnnp / descriptor ----------------------------------------------

    #[test]
    fn switching_function_is_bounded_and_decaying(
        r in 0.1f64..20.0, smth in 0.5f64..5.9, extent in 0.2f64..8.0
    ) {
        let cut = smth + extent;
        let s = switching_scalar(r, smth, cut);
        prop_assert!(s >= 0.0, "s(r) must be nonnegative");
        prop_assert!(s <= 1.0 / r + 1e-12, "s(r) bounded by 1/r");
        if r >= cut {
            prop_assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn json_number_round_trip(v in -1e12f64..1e12) {
        let text = Json::Number(v).to_string();
        let parsed = Json::parse(&text).unwrap();
        let got = parsed.as_f64().unwrap();
        prop_assert!((got - v).abs() <= 1e-9 * (1.0 + v.abs()));
    }

    #[test]
    fn json_string_round_trip(s in "[ -~]{0,40}") {
        let text = Json::String(s.clone()).to_string();
        prop_assert_eq!(Json::parse(&text).unwrap(), Json::String(s));
    }

    // ---- core / decode ----------------------------------------------------

    #[test]
    fn decoder_is_total_over_the_representation(
        lr in 3.51e-8f64..0.01, stop in 3.51e-8f64..0.0001,
        rcut in 6.0f64..12.0, smth in 2.0f64..6.0,
        scale in 0.0f64..3.0, desc in 0.0f64..5.0, fit in 0.0f64..5.0
    ) {
        let decoded = decode(&[lr, stop, rcut, smth, scale, desc, fit]);
        prop_assert!(decoded.rcut_smth < decoded.rcut);
        prop_assert!(decoded.start_lr > 0.0);
        // Decoded categories must come from the legal sets.
        prop_assert!(["linear", "sqrt", "none"].contains(&decoded.scale_by_worker.name()));
        prop_assert!(
            ["relu", "relu6", "softplus", "sigmoid", "tanh"]
                .contains(&decoded.desc_activ_func.name())
        );
    }

    #[test]
    fn floor_mod_is_always_in_range(v in -100.0f64..100.0, n in 1usize..10) {
        prop_assert!(floor_mod(v, n) < n);
    }

    // ---- md / geometry ----------------------------------------------------

    #[test]
    fn min_image_distance_is_symmetric_and_bounded(
        ax in 0.0f64..17.84, ay in 0.0f64..17.84, az in 0.0f64..17.84,
        bx in 0.0f64..17.84, by in 0.0f64..17.84, bz in 0.0f64..17.84
    ) {
        let cell = Cell::cubic(17.84);
        let a = [ax, ay, az];
        let b = [bx, by, bz];
        let dab = cell.distance(a, b);
        let dba = cell.distance(b, a);
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(dab <= 17.84 * 3f64.sqrt() / 2.0 + 1e-9);
        prop_assert!(dab >= 0.0);
    }

    #[test]
    fn wrap_is_idempotent(x in -100.0f64..100.0) {
        let cell = Cell::cubic(17.84);
        let w = cell.wrap_coord(x);
        prop_assert!((0.0..17.84).contains(&w));
        prop_assert!((cell.wrap_coord(w) - w).abs() < 1e-12);
    }
}
