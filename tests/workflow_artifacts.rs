//! Integration tests of the §2.2.4 evaluation workflow across crates: the
//! template → input.json → TrainConfig → trainer → lcurve → fitness chain,
//! including every failure path's MAXINT semantics.

use std::collections::BTreeMap;
use std::sync::Arc;

use dphpo::core::template::{substitute, template_vars, INPUT_TEMPLATE};
use dphpo::core::workflow::{derive_seed, evaluate_individual, EvalContext};
use dphpo::core::{decode, DeepMDRepresentation};
use dphpo::dnnp::{Json, TrainConfig};
use dphpo::hpc::CostModel;
use dphpo::md::generate::{generate_dataset, GenConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_ctx() -> EvalContext {
    let mut rng = StdRng::seed_from_u64(1);
    let gen = GenConfig {
        n_atoms: 10,
        box_len: 9.0,
        n_frames: 8,
        equil_steps: 80,
        sample_every: 4,
        ..GenConfig::tiny()
    };
    let mut ds = generate_dataset(&gen, &mut rng);
    ds.add_label_noise(0.0005, 0.03, &mut rng);
    let (train_ds, val_ds) = ds.split(0.25, &mut rng);
    EvalContext {
        base_config: TrainConfig {
            embedding_neurons: vec![4, 4],
            fitting_neurons: vec![6],
            num_steps: 15,
            batch_per_worker: 1,
            n_workers: 1,
            disp_freq: 15,
            val_max_frames: 2,
            ..TrainConfig::default()
        },
        train: Arc::new(train_ds),
        val: Arc::new(val_ds),
        cost_model: CostModel::default(),
        workdir: None,
    }
}

#[test]
fn every_random_genome_evaluates_without_panicking() {
    // The workflow must be total over the representation's range: any
    // random genome gets either a real fitness or a MAXINT penalty.
    let ctx = tiny_ctx();
    let mut rng = StdRng::seed_from_u64(3);
    let ranges = DeepMDRepresentation::init_ranges();
    for k in 0..12 {
        let genome: Vec<f64> =
            ranges.iter().map(|&(lo, hi)| rng.random_range(lo..hi)).collect();
        let record = evaluate_individual(&ctx, &genome, derive_seed(5, k));
        assert_eq!(record.fitness.len(), 2);
        assert!(record.minutes > 0.0);
        if !record.failed {
            assert!(record.fitness.get(0).is_finite());
            assert!(record.fitness.get(1).is_finite());
        }
    }
}

#[test]
fn template_substitution_round_trips_through_the_artifact() {
    // The exact text written to input.json must parse back into the exact
    // configuration the trainer uses.
    let decoded = decode(&[0.004, 5e-5, 9.7, 3.1, 1.5, 2.5, 4.5]);
    let vars = template_vars(&decoded, &[6, 4], &[16, 16], 2000, 1, 6, 500, 6, 99);
    let text = substitute(INPUT_TEMPLATE, &vars).unwrap();
    let config = TrainConfig::from_input_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(config.rcut, 9.7);
    assert_eq!(config.scale_by_worker.name(), "sqrt");
    assert_eq!(config.desc_activation.name(), "softplus");
    assert_eq!(config.fitting_activation.name(), "tanh");
    assert_eq!(config.num_steps, 2000);
    // And the same config re-serialises to an equivalent document.
    let doc2 = config.to_input_json();
    let config2 = TrainConfig::from_input_json(&doc2).unwrap();
    assert_eq!(config, config2);
}

#[test]
fn unknown_placeholder_fails_loudly() {
    let mut vars = BTreeMap::new();
    vars.insert("rcut".to_string(), "9.0".to_string());
    assert!(substitute(INPUT_TEMPLATE, &vars).is_err());
}

#[test]
fn failure_paths_all_yield_maxint() {
    let ctx = tiny_ctx();
    // Divergent learning rate.
    let diverge = vec![1e200, 1e199, 7.0, 2.5, 2.5, 4.5, 4.5];
    let record = evaluate_individual(&ctx, &diverge, 1);
    assert!(record.failed);
    assert!(record.fitness.is_penalty());
    // Invalid learning rate (non-positive).
    let invalid = vec![-1.0, 1e-5, 7.0, 2.5, 2.5, 4.5, 4.5];
    let record = evaluate_individual(&ctx, &invalid, 2);
    assert!(record.failed && record.fitness.is_penalty());
}

#[test]
fn maxint_sorts_below_every_real_fitness() {
    // The reason the paper replaced NaN with MAXINT: rank sorting must
    // deterministically place failures on the worst front.
    use dphpo::evo::{rank_ordinal_sort, Fitness};
    let fits = [
        Fitness::new(vec![0.001, 0.04]),
        Fitness::penalty(2),
        Fitness::new(vec![0.002, 0.03]),
    ];
    let refs: Vec<&Fitness> = fits.iter().collect();
    let fronts = rank_ordinal_sort(&refs);
    let ranks = fronts.ranks(3);
    assert_eq!(ranks[1], fronts.len() - 1, "penalty must land on the last front");
    assert!(ranks[0] < ranks[1] && ranks[2] < ranks[1]);
}

#[test]
fn seeds_decorrelate_evaluations_but_reproduce_exactly() {
    let ctx = tiny_ctx();
    let genome = vec![0.005, 1e-4, 7.0, 2.5, 2.5, 4.5, 4.5];
    let a = evaluate_individual(&ctx, &genome, 100);
    let b = evaluate_individual(&ctx, &genome, 100);
    let c = evaluate_individual(&ctx, &genome, 101);
    assert_eq!(a.fitness, b.fitness);
    assert_eq!(a.minutes, b.minutes);
    assert_ne!(a.fitness, c.fitness);
}
